//! `krb-top`: the operator's live view of a running KDC.
//!
//! The paper's Athena deployment was shared infrastructure: somebody had
//! to notice when the authentication service degraded before thousands of
//! users did. This module is that somebody's tool. It stands up (or, for
//! a future `krbd`, would connect to) a realm whose KDC serves the
//! `krb-mon` introspection frames on [`krb_netsim::ports::MON`], polls
//! all five queries over the simulated network, and renders either a
//! human dashboard or a machine-readable JSON snapshot:
//!
//! - **health** — the derived verdict ladder (healthy/degraded/failing)
//!   from error rate, replay rate, and journal drops;
//! - **kdc counters** — AS/TGS successes, errors, replay hits (total and
//!   per stripe), store snapshot swaps;
//! - **latency** — histogram summaries *with trace exemplars*: each
//!   bucket remembers the last traced request that landed in it, so a
//!   p99 spike links directly to a `krb-trace` timeline;
//! - **top principals** — bounded heavy-hitter tables (who is hammering
//!   the AS, which services dominate the TGS, which principals error);
//! - **journal tail & flight recorder** — the newest events and the
//!   complete captured chains of recent failures.
//!
//! The seeded rig ([`run`]) drives deterministic traffic (clean logins, a
//! replayed authenticator, a wrong password, an unknown principal) under
//! simulated clocks, so `krb-top --once --json` is byte-identical across
//! same-seed runs — `scripts/check.sh` pins that. The dashboard mode
//! polls the same frames between traffic rounds, which is exactly what a
//! real `krb-top` would do against a live `krbd` socket.

use crate::{kdb_init, register_service, register_user, ToolError, Workstation};
use kerberos::{krb_rd_req_sched_ctx, ErrorCode, Principal, ReplayCache};
use krb_crypto::{KeyGenerator, Scheduled};
use krb_kdc::{shared_clock, Deployment, RealmConfig};
use krb_mon::{
    ErrorTraces, HealthReport, HealthSpec, JournalTail, MonRequest, MonService, MonState,
    StatSnapshot, TopPrincipals,
};
use krb_netsim::{ports, Endpoint, NetConfig, Router, SimNet};
use krb_telemetry::{lcg_clock_us, ClockUs, FlightRecorder, Journal, Registry, TraceCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;

const REALM: &str = "MON.MIT.EDU";
const START: u32 = 600_000_000;
const KDC_ADDR: [u8; 4] = [18, 72, 0, 10];
const WS_ADDR: [u8; 4] = [18, 72, 0, 5];
/// Source port the monitoring client queries from.
const CLIENT_PORT: u16 = 40_000;
/// Flight-recorder ring capacity in the rig.
const FLIGHT_CAP: usize = 16;
/// Heavy-hitter table capacity in the rig.
const SKETCH_K: usize = 8;

/// Rig and rendering parameters.
#[derive(Clone, Copy, Debug)]
pub struct TopConfig {
    /// Seeds the database, trace ids, and the simulated latency clock.
    pub seed: u64,
    /// Traffic-then-query rounds ("polls") to run.
    pub polls: usize,
    /// Journal lines per `Tail` query.
    pub tail: u32,
    /// Entries per heavy-hitter table in replies.
    pub top_k: u32,
}

impl Default for TopConfig {
    fn default() -> Self {
        TopConfig { seed: 42, polls: 3, tail: 8, top_k: 5 }
    }
}

/// The five decoded frames of one poll.
#[derive(Clone, Debug)]
pub struct TopSnapshot {
    /// Which poll round produced this (0-based).
    pub poll: usize,
    /// The `Stat` reply.
    pub stat: StatSnapshot,
    /// The `Health` reply.
    pub health: HealthReport,
    /// The `Tail` reply.
    pub tail: JournalTail,
    /// The `Top` reply.
    pub top: TopPrincipals,
    /// The `ErrTraces` reply.
    pub flights: ErrorTraces,
}

/// Everything one `krb-top` invocation produced.
#[derive(Clone, Debug)]
pub struct TopRun {
    /// One snapshot per poll, in poll order.
    pub snapshots: Vec<TopSnapshot>,
    /// The realm journal's full rendered dump after the last poll — the
    /// `krb-trace` input that resolves any exemplar or flight trace id.
    pub journal_dump: String,
}

/// Stand up the seeded realm, drive `cfg.polls` rounds of traffic, query
/// the `MonService` frames after each round over the simulated network.
pub fn run(cfg: &TopConfig) -> Result<TopRun, ToolError> {
    let intk = |_| ToolError::Krb(ErrorCode::IntkErr);
    let polls = cfg.polls.max(1);
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let mut boot = kdb_init(REALM, "mon-master-pw", START, cfg.seed).map_err(intk)?;
    for user in ["bcn", "mjl", "eva"] {
        register_user(&mut boot.db, user, "", &format!("pw-{user}"), START).map_err(intk)?;
    }
    let mut keygen = KeyGenerator::new(StdRng::seed_from_u64(cfg.seed ^ 0x5EED));
    let svc_key =
        register_service(&mut boot.db, "sample", "host", START, &mut keygen).map_err(intk)?;
    let dep = Deployment::install(
        &mut router,
        REALM,
        boot.db,
        RealmConfig::new(REALM),
        KDC_ADDR,
        0,
        START,
    )
    .map_err(|_| ToolError::Krb(ErrorCode::IntkErr))?;

    // Telemetry: shared registry + journal, simulated latency clock, the
    // flight recorder hooked onto the journal, heavy-hitter tables on.
    let registry = Registry::shared();
    let journal = Journal::shared();
    let clock_us = lcg_clock_us(cfg.seed, 40, 400);
    let recorder = Arc::new(FlightRecorder::new(FLIGHT_CAP));
    journal.set_flight_recorder(Arc::clone(&recorder));
    dep.master.set_telemetry(Arc::clone(&registry), ClockUs::clone(&clock_us));
    dep.master.set_journal(Arc::clone(&journal));
    let top = dep.master.enable_top_stats(SKETCH_K);

    // The introspection plane, served right next to the KDC.
    let state = MonState::new("kdc-master", Arc::clone(&registry), Arc::clone(&journal))
        .with_recorder(Arc::clone(&recorder))
        .with_sketch("as_clients", top.as_clients.clone())
        .with_sketch("tgs_services", top.tgs_services.clone())
        .with_sketch("error_principals", top.error_principals.clone())
        .with_health(HealthSpec::kdc());
    let mon_ep = Endpoint::new(KDC_ADDR, ports::MON);
    router.serve(mon_ep, MonService(Arc::new(state)));

    let service = Principal::parse("sample.host", REALM)?;
    let sched = Scheduled::new(&svc_key);
    let mut replay = ReplayCache::new();
    let mut ws = Workstation::new(
        WS_ADDR,
        REALM,
        dep.kdc_endpoints(),
        shared_clock(Arc::clone(&dep.clock_cell)),
    );
    ws.enable_tracing(Arc::clone(&journal), ClockUs::clone(&clock_us), cfg.seed);
    let client = Endpoint::new(WS_ADDR, CLIENT_PORT);

    let mut snapshots = Vec::with_capacity(polls);
    for poll in 0..polls {
        drive_round(&mut router, &dep, &mut ws, &service, &sched, &mut replay, &journal, &clock_us)?;
        snapshots.push(query(&mut router, client, mon_ep, cfg, poll)?);
    }
    Ok(TopRun { snapshots, journal_dump: journal.render() })
}

/// One round of seeded traffic: two clean full logins (bcn, mjl), an
/// AS-only login (eva), a replayed authenticator, a wrong password, and
/// an unknown principal — successes for the counters and heavy hitters,
/// failures for the health model and the flight recorder.
#[allow(clippy::too_many_arguments)]
fn drive_round(
    router: &mut Router,
    dep: &Deployment,
    ws: &mut Workstation,
    service: &Principal,
    sched: &Scheduled,
    replay: &mut ReplayCache,
    journal: &Arc<Journal>,
    clock_us: &ClockUs,
) -> Result<(), ToolError> {
    let app_ctx = |ws: &Workstation| -> Result<TraceCtx, ToolError> {
        let trace = ws.current_trace().ok_or(ToolError::Krb(ErrorCode::IntkErr))?;
        Ok(TraceCtx::new(Arc::clone(journal), ClockUs::clone(clock_us), trace))
    };

    // Two clean Figure-9 flows.
    for user in ["bcn", "mjl"] {
        dep.advance_time(1);
        ws.kinit(router, user, &format!("pw-{user}"))?;
        let (ap, _) = ws.mk_request(router, service, 0, true)?;
        let ctx = app_ctx(ws)?;
        krb_rd_req_sched_ctx(&ap, service, sched, ws.addr, ws.now(), replay, Some(&ctx))?;
    }

    // AS-only login: eva shows up in the as_clients table but never asks
    // for a service ticket.
    dep.advance_time(1);
    ws.kinit(router, "eva", "pw-eva")?;

    // A replayed authenticator: the replay-cache verdict lands at the app
    // hop and the flight recorder captures the trace's chain.
    dep.advance_time(1);
    ws.kinit(router, "bcn", "pw-bcn")?;
    let (ap, _) = ws.mk_request(router, service, 0, true)?;
    let ctx = app_ctx(ws)?;
    krb_rd_req_sched_ctx(&ap, service, sched, ws.addr, ws.now(), replay, Some(&ctx))?;
    match krb_rd_req_sched_ctx(&ap, service, sched, ws.addr, ws.now(), replay, Some(&ctx)) {
        Err(ErrorCode::RdApRepeat) => {}
        _ => return Err(ToolError::Krb(ErrorCode::RdApRepeat)),
    }

    // Wrong password: the KDC answers normally (it never sees the
    // password, §4.2); the workstation reports the failure.
    dep.advance_time(1);
    if ws.kinit(router, "mjl", "wrong-pw").is_ok() {
        return Err(ToolError::Krb(ErrorCode::IntkBadPw));
    }

    // Unknown principal: the KDC itself rejects — a kdc_error_total
    // increment, a journaled kdc_err, and an error_principals entry.
    dep.advance_time(1);
    if ws.kinit(router, "nosuch", "pw").is_ok() {
        return Err(ToolError::Krb(ErrorCode::KdcPrUnknown));
    }
    Ok(())
}

/// Query all five frames over the simulated network.
fn query(
    router: &mut Router,
    client: Endpoint,
    mon_ep: Endpoint,
    cfg: &TopConfig,
    poll: usize,
) -> Result<TopSnapshot, ToolError> {
    let undec = ToolError::Krb(ErrorCode::RdApUndec);
    let stat = StatSnapshot::decode(&router.rpc(client, mon_ep, &MonRequest::Stat.encode())?)
        .ok_or(undec.clone())?;
    let health = HealthReport::decode(&router.rpc(client, mon_ep, &MonRequest::Health.encode())?)
        .ok_or(undec.clone())?;
    let tail =
        JournalTail::decode(&router.rpc(client, mon_ep, &MonRequest::Tail(cfg.tail).encode())?)
            .ok_or(undec.clone())?;
    let top =
        TopPrincipals::decode(&router.rpc(client, mon_ep, &MonRequest::Top(cfg.top_k).encode())?)
            .ok_or(undec.clone())?;
    let flights = ErrorTraces::decode(
        &router.rpc(client, mon_ep, &MonRequest::ErrTraces(cfg.top_k).encode())?,
    )
    .ok_or(undec)?;
    Ok(TopSnapshot { poll, stat, health, tail, top, flights })
}

fn counter(stat: &StatSnapshot, name: &str) -> u64 {
    stat.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn latency_json(stat: &StatSnapshot, name: &str) -> String {
    let Some(h) = stat.hists.iter().find(|h| h.name == name) else {
        return "{\"count\":0}".to_string();
    };
    let exemplars: Vec<String> = h
        .exemplars
        .iter()
        .map(|(le, trace)| {
            let le = match le {
                Some(b) => b.to_string(),
                None => "inf".to_string(),
            };
            format!("{{\"le\": \"{le}\", \"trace\": \"{trace:016x}\"}}")
        })
        .collect();
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"exemplars\": [{}]}}",
        h.count,
        h.p50,
        h.p95,
        h.p99,
        h.max,
        exemplars.join(", ")
    )
}

/// Render one snapshot as the deterministic JSON document `--json` emits.
pub fn render_json(snap: &TopSnapshot) -> String {
    let stat = &snap.stat;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"krb-top\",");
    let _ = writeln!(out, "  \"component\": \"{}\",", json_escape(&stat.component));
    let _ = writeln!(out, "  \"poll\": {},", snap.poll);

    // Health verdicts, in spec order.
    out.push_str("  \"health\": [");
    for (i, c) in snap.health.components.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"component\": \"{}\", \"state\": \"{}\", \"err_permille\": {}, \
             \"replay_permille\": {}, \"total\": {}, \"journal_dropped\": {}}}",
            json_escape(&c.component),
            json_escape(&c.state),
            c.err_permille,
            c.replay_permille,
            c.total,
            c.journal_dropped,
        );
    }
    out.push_str("],\n");

    // The KDC outcome counters, stripes included.
    let stripes: Vec<String> = stat.stripe_hits().iter().map(u64::to_string).collect();
    let _ = writeln!(
        out,
        "  \"kdc\": {{\"as_ok\": {}, \"tgs_ok\": {}, \"errors\": {}, \"replay_hits\": {}, \
         \"store_swaps\": {}, \"stripe_hits\": [{}]}},",
        counter(stat, "kdc_as_ok_total"),
        counter(stat, "kdc_tgs_ok_total"),
        counter(stat, "kdc_error_total"),
        counter(stat, "kdc_replay_hits_total"),
        stat.store_swaps(),
        stripes.join(", "),
    );

    let _ = writeln!(
        out,
        "  \"latency_us\": {{\"as\": {}, \"tgs\": {}}},",
        latency_json(stat, "kdc_as_latency_us"),
        latency_json(stat, "kdc_tgs_latency_us"),
    );

    // Heavy-hitter tables, in attachment order.
    out.push_str("  \"top\": {");
    for (ti, (label, entries)) in snap.top.tables.iter().enumerate() {
        if ti > 0 {
            out.push_str(", ");
        }
        let rows: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"key\": \"{}\", \"count\": {}, \"err\": {}}}",
                    json_escape(&e.key),
                    e.count,
                    e.err
                )
            })
            .collect();
        let _ = write!(out, "\"{}\": [{}]", json_escape(label), rows.join(", "));
    }
    out.push_str("},\n");

    let tail_lines: Vec<String> =
        snap.tail.lines.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
    let _ = writeln!(
        out,
        "  \"journal\": {{\"events\": {}, \"dropped\": {}, \"tail\": [{}]}},",
        snap.tail.events,
        snap.tail.dropped,
        tail_lines.join(", "),
    );

    let records: Vec<String> = snap
        .flights
        .records
        .iter()
        .map(|r| {
            let chain: Vec<String> =
                r.chain.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
            format!(
                "{{\"trace\": \"{:016x}\", \"fail_kind\": \"{}\", \"at_us\": {}, \
                 \"truncated\": {}, \"dropped_at_capture\": {}, \"chain\": [{}]}}",
                r.trace,
                json_escape(&r.fail_kind),
                r.at_us,
                r.truncated,
                r.dropped_at_capture,
                chain.join(", ")
            )
        })
        .collect();
    let _ = writeln!(
        out,
        "  \"flight\": {{\"captures\": {}, \"evicted\": {}, \"records\": [{}]}}",
        snap.flights.captures,
        snap.flights.evicted,
        records.join(", "),
    );
    out.push_str("}\n");
    out
}

/// Render one snapshot as the human dashboard (one poll's screen).
pub fn render_dashboard(snap: &TopSnapshot) -> String {
    let stat = &snap.stat;
    let mut out = String::new();
    let _ = writeln!(out, "krb-top — {} (poll {})", stat.component, snap.poll);
    for c in &snap.health.components {
        let _ = writeln!(
            out,
            "  health {:<4} {:<8} err={}‰ replay={}‰ total={} journal_dropped={}",
            c.component, c.state.to_uppercase(), c.err_permille, c.replay_permille, c.total,
            c.journal_dropped,
        );
    }
    let _ = writeln!(
        out,
        "  kdc    as_ok={} tgs_ok={} errors={} replay_hits={} store_swaps={}",
        counter(stat, "kdc_as_ok_total"),
        counter(stat, "kdc_tgs_ok_total"),
        counter(stat, "kdc_error_total"),
        counter(stat, "kdc_replay_hits_total"),
        stat.store_swaps(),
    );
    for name in ["kdc_as_latency_us", "kdc_tgs_latency_us"] {
        if let Some(h) = stat.hists.iter().find(|h| h.name == name) {
            let exemplar = h
                .exemplars
                .last()
                .map(|(_, t)| format!(" exemplar-trace={t:016x}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<7}count={} p50={} p95={} p99={} max={}{}",
                name.trim_start_matches("kdc_").trim_end_matches("_latency_us"),
                h.count, h.p50, h.p95, h.p99, h.max, exemplar,
            );
        }
    }
    for (label, entries) in &snap.top.tables {
        let rows: Vec<String> =
            entries.iter().map(|e| format!("{}={}", e.key, e.count)).collect();
        let _ = writeln!(out, "  top {label}: {}", rows.join(" "));
    }
    let _ = writeln!(
        out,
        "  journal events={} dropped={} (tail {} lines)",
        snap.tail.events,
        snap.tail.dropped,
        snap.tail.lines.len()
    );
    for line in &snap.tail.lines {
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(
        out,
        "  flight captures={} evicted={}",
        snap.flights.captures, snap.flights.evicted
    );
    for r in &snap.flights.records {
        let _ = writeln!(
            out,
            "    trace={:016x} fail={} chain={} events{}",
            r.trace,
            r.fail_kind,
            r.chain.len(),
            if r.truncated { " TRUNCATED" } else { "" },
        );
    }
    out
}

/// Keys a well-formed `krb-top --json` snapshot must contain;
/// `scripts/check.sh` greps for these and the schema test pins them.
pub const TOP_JSON_KEYS: &[&str] = &[
    "\"tool\"",
    "\"component\"",
    "\"health\"",
    "\"state\"",
    "\"err_permille\"",
    "\"replay_permille\"",
    "\"journal_dropped\"",
    "\"kdc\"",
    "\"as_ok\"",
    "\"tgs_ok\"",
    "\"errors\"",
    "\"replay_hits\"",
    "\"store_swaps\"",
    "\"stripe_hits\"",
    "\"latency_us\"",
    "\"exemplars\"",
    "\"top\"",
    "\"as_clients\"",
    "\"tgs_services\"",
    "\"error_principals\"",
    "\"journal\"",
    "\"events\"",
    "\"dropped\"",
    "\"flight\"",
    "\"captures\"",
    "\"trace\"",
    "\"fail_kind\"",
    "\"truncated\"",
    "\"chain\"",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krbtrace::{group_traces, parse_dump};

    fn once() -> TopRun {
        run(&TopConfig { polls: 1, ..TopConfig::default() }).expect("rig")
    }

    /// Minimal structural JSON check (same spirit as krbstat's): balanced
    /// braces/brackets outside strings, even quote count.
    fn looks_like_json(s: &str) -> bool {
        let (mut depth, mut in_str, mut esc, mut quotes) = (0i32, false, false, 0usize);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                    quotes += 1;
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    quotes += 1;
                }
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str && quotes % 2 == 0
    }

    #[test]
    fn same_seed_json_snapshots_are_byte_identical() {
        let a = once();
        let b = once();
        assert_eq!(
            render_json(a.snapshots.last().unwrap()),
            render_json(b.snapshots.last().unwrap())
        );
        assert_eq!(a.journal_dump, b.journal_dump);
        let c = run(&TopConfig { seed: 7, polls: 1, ..TopConfig::default() }).expect("rig");
        assert_ne!(
            render_json(a.snapshots.last().unwrap()),
            render_json(c.snapshots.last().unwrap()),
            "seed must reach the snapshot"
        );
    }

    #[test]
    fn json_snapshot_contains_every_schema_key_and_parses() {
        let run = once();
        let json = render_json(run.snapshots.last().unwrap());
        for key in TOP_JSON_KEYS {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(looks_like_json(&json), "malformed JSON:\n{json}");
    }

    #[test]
    fn health_reflects_the_forced_failures() {
        let run = once();
        let snap = run.snapshots.last().unwrap();
        let kdc = &snap.health.components[0];
        assert_eq!(kdc.component, "kdc");
        // One unknown-principal rejection among ~seven successful
        // exchanges: above the 50‰ degraded line, below failing.
        assert_eq!(kdc.state, "degraded", "{kdc:?}");
        assert!(kdc.err_permille > 50, "{kdc:?}");
        assert_eq!(kdc.journal_dropped, 0);
    }

    #[test]
    fn top_tables_rank_the_heavy_hitters() {
        let run = once();
        let snap = run.snapshots.last().unwrap();
        let table = |label: &str| -> Vec<(String, u64)> {
            snap.top
                .tables
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, entries)| {
                    entries.iter().map(|e| (e.key.clone(), e.count)).collect()
                })
                .expect(label)
        };
        // Per round: bcn logs in twice, mjl twice (one wrong-password — the
        // KDC still answers the AS), eva once.
        let clients = table("as_clients");
        assert_eq!(clients[0], ("bcn".to_string(), 2));
        assert!(clients.contains(&("mjl".to_string(), 2)), "{clients:?}");
        assert!(clients.contains(&("eva".to_string(), 1)), "{clients:?}");
        assert_eq!(table("tgs_services")[0].0, "sample.host");
        assert_eq!(table("error_principals"), vec![("nosuch".to_string(), 1)]);
    }

    #[test]
    fn exemplar_traces_resolve_to_journal_timelines() {
        let run = once();
        let snap = run.snapshots.last().unwrap();
        let timelines = group_traces(parse_dump(&run.journal_dump));
        let exemplars: Vec<String> = snap
            .stat
            .hists
            .iter()
            .flat_map(|h| h.exemplars.iter().map(|(_, t)| format!("{t:016x}")))
            .collect();
        assert!(!exemplars.is_empty(), "traced load must leave exemplars");
        for trace in &exemplars {
            let tl = timelines
                .iter()
                .find(|tl| &tl.trace == trace)
                .unwrap_or_else(|| panic!("exemplar {trace} has no timeline"));
            assert!(
                tl.events.iter().any(|e| e.comp == "kdc"),
                "exemplar {trace} timeline is missing its KDC hop: {:?}",
                tl.events
            );
        }
        // The clean-login exemplar resolves to the complete Figure-9 chain.
        let full = [
            "login_start", "as_req", "as_ok", "login_ok", "tgs_req", "tgs_ok", "ap_sent",
            "ap_verified",
        ];
        assert!(
            exemplars.iter().any(|trace| {
                timelines.iter().any(|tl| {
                    &tl.trace == trace
                        && tl.events.iter().map(|e| e.kind.as_str()).eq(full.iter().copied())
                })
            }),
            "no exemplar resolves to a complete clean login"
        );
    }

    #[test]
    fn flight_records_capture_complete_failure_chains() {
        let run = once();
        let snap = run.snapshots.last().unwrap();
        let kinds: Vec<&str> =
            snap.flights.records.iter().map(|r| r.fail_kind.as_str()).collect();
        assert!(kinds.contains(&"replay_hit"), "{kinds:?}");
        assert!(kinds.contains(&"login_err"), "{kinds:?}");
        // The unknown-principal failure dedups to the later ws-side
        // login_err, but its captured chain still holds the KDC verdict.
        assert!(
            snap.flights
                .records
                .iter()
                .any(|r| r.chain.iter().any(|l| l.contains("kind=kdc_err"))),
            "no captured chain holds the kdc_err hop: {:?}",
            snap.flights.records
        );
        for r in &snap.flights.records {
            assert!(!r.truncated, "nothing dropped, nothing truncated: {r:?}");
            assert_eq!(r.dropped_at_capture, 0);
            assert!(!r.chain.is_empty());
        }
        assert_eq!(snap.tail.dropped, 0);
    }

    #[test]
    fn dashboard_mode_polls_and_renders_every_section() {
        let run = run(&TopConfig { polls: 2, ..TopConfig::default() }).expect("rig");
        assert_eq!(run.snapshots.len(), 2);
        // Counters are cumulative across polls.
        let as_ok = |s: &TopSnapshot| counter(&s.stat, "kdc_as_ok_total");
        assert_eq!(as_ok(&run.snapshots[1]), 2 * as_ok(&run.snapshots[0]));
        let text = render_dashboard(&run.snapshots[1]);
        for needle in
            ["krb-top — kdc-master", "health kdc", "top as_clients", "flight captures=", "exemplar-trace="]
        {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
