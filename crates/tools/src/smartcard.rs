//! The smartcard proposal of §8, implemented.
//!
//! > "A better solution would require that the user's key never leave a
//! > system that the user knows can be trusted. One way this could be done
//! > would be if the user possessed a smartcard capable of doing the
//! > encryptions required in the authentication protocol."
//!
//! [`Smartcard`] holds the user's private key inside the card and exposes
//! exactly one operation: decrypting an AS reply. The workstation hands
//! ciphertext in and receives a credential (TGT + session key) out — the
//! password-derived long-term key is never present in workstation memory,
//! so the §8 attack ("someone might have come along and modified the
//! log-in program to save the user's password") yields only tickets of
//! bounded lifetime, never the key that mints them.

use kerberos::{read_as_reply_with_key, Credential, KrbResult};
use krb_crypto::{string_to_key, DesKey};

/// A user's smartcard. Construction ("personalization") happens once, at
/// a trusted terminal; afterwards the key is unreadable.
pub struct Smartcard {
    /// The long-term key, private to the card.
    key: DesKey,
    /// Who the card belongs to (printed on the front, as it were).
    pub owner: String,
    /// Operation counter (cards log usage).
    uses: u64,
}

impl Smartcard {
    /// Personalize a card for `owner` from their password. Done at a
    /// trusted terminal — the only place the password is ever typed.
    pub fn personalize(owner: &str, password: &str) -> Self {
        Smartcard { key: string_to_key(password), owner: owner.to_string(), uses: 0 }
    }

    /// The card's single operation: decrypt an AS reply and hand back the
    /// resulting credential. The key never crosses the card edge.
    pub fn process_as_reply(&mut self, reply: &[u8], request_time: u32) -> KrbResult<Credential> {
        self.uses += 1;
        read_as_reply_with_key(reply, &self.key, request_time)
    }

    /// How many operations the card has performed.
    pub fn uses(&self) -> u64 {
        self.uses
    }
}

impl std::fmt::Debug for Smartcard {
    // Like DesKey, a card never reveals its contents in logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Smartcard(owner={}, uses={}, key=<on-card>)", self.owner, self.uses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_never_leaks_the_key() {
        let card = Smartcard::personalize("bcn", "bcn-pw");
        let s = format!("{card:?}");
        let hex: String = string_to_key("bcn-pw")
            .as_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert!(!s.contains(&hex));
        assert!(s.contains("on-card"));
    }

    #[test]
    fn card_counts_uses() {
        let mut card = Smartcard::personalize("bcn", "bcn-pw");
        let _ = card.process_as_reply(b"junk", 0);
        let _ = card.process_as_reply(b"junk", 0);
        assert_eq!(card.uses(), 2);
    }
}
