//! `kdb_init` and friends: the administrator's bootstrap programs (§6.3).
//!
//! "The Kerberos administrator's job begins with running a program to
//! initialize the database. Another program must be run to register
//! essential principals in the database, such as the Kerberos
//! administrator's name with an admin instance. The Kerberos
//! authentication server and the administration server must be started up."

use kerberos::KrbResult;
use krb_crypto::{string_to_key, DesKey, KeyGenerator};
use krb_kdb::{MemStore, PrincipalDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything `kdb_init` + `kadmin` produce for a fresh realm.
pub struct RealmBootstrap {
    /// The initialized master database.
    pub db: PrincipalDb<MemStore>,
    /// The TGS key (also in the database; kept for tests).
    pub tgs_key: DesKey,
    /// The KDBM service key.
    pub kdbm_key: DesKey,
}

/// Initialize a realm database with the essential principals: `K.M`
/// (created by `PrincipalDb::create`), `krbtgt.<realm>`, and
/// `changepw.kerberos` (registered `NO_TGS` by the KDBM server setup).
pub fn kdb_init(realm: &str, master_password: &str, now: u32, seed: u64) -> KrbResult<RealmBootstrap> {
    let master_key = string_to_key(master_password);
    let mut db = PrincipalDb::create(MemStore::new(), master_key, now)
        .map_err(|_| kerberos::ErrorCode::KdcGenErr)?;
    let mut keygen = KeyGenerator::new(StdRng::seed_from_u64(seed));
    let far_future = now.saturating_add(5 * 365 * 24 * 3600);

    let tgs_key = keygen.generate();
    db.add_principal("krbtgt", realm, &tgs_key, far_future, 96, now, "kdb_init.")
        .map_err(|_| kerberos::ErrorCode::KdcGenErr)?;

    let kdbm_key = keygen.generate();
    // Registered with NO_TGS by KdbmServer::register_service; here we only
    // generate the key — registration needs the running master KDC.
    Ok(RealmBootstrap { db, tgs_key, kdbm_key })
}

/// Register a user (as `kadmin` would during initial population).
pub fn register_user(
    db: &mut PrincipalDb<MemStore>,
    name: &str,
    instance: &str,
    password: &str,
    now: u32,
) -> KrbResult<()> {
    let far_future = now.saturating_add(5 * 365 * 24 * 3600);
    db.add_principal(name, instance, &string_to_key(password), far_future, 96, now, "kadmin.")
        .map_err(|e| match e {
            krb_kdb::DbError::AlreadyExists(_) => kerberos::ErrorCode::KadmBadReq,
            krb_kdb::DbError::BadName(_) => kerberos::ErrorCode::KdcNameFormat,
            _ => kerberos::ErrorCode::KdcGenErr,
        })
}

/// Register a service with a random key, returning the key for the
/// server's srvtab (§6.3: "usually this is an automatically generated
/// random key").
pub fn register_service(
    db: &mut PrincipalDb<MemStore>,
    name: &str,
    instance: &str,
    now: u32,
    keygen: &mut KeyGenerator<StdRng>,
) -> KrbResult<DesKey> {
    let key = keygen.generate();
    let far_future = now.saturating_add(5 * 365 * 24 * 3600);
    db.add_principal(name, instance, &key, far_future, 96, now, "kadmin.")
        .map_err(|_| kerberos::ErrorCode::KdcGenErr)?;
    Ok(key)
}
