//! A workstation: the user-facing side of Kerberos (paper §6.1).
//!
//! Binds the pure client routines of the applications library to a network
//! and a credential cache, giving the end-user programs their behaviour:
//! `kinit` (login / new TGT), transparent service-ticket acquisition,
//! `klist`, and `kdestroy`. Includes KDC failover: a workstation tries the
//! master and then each slave (§5.3: replication exists for "higher
//! availability").

use crate::ToolError;
use kerberos::{
    build_as_req, build_tgs_req_with, krb_mk_req, read_as_reply_with_password,
    read_tgs_reply_with, ApReq, Credential, CredentialCache, ErrorCode, HostAddr, Principal,
    DEFAULT_SERVICE_LIFE, DEFAULT_TGT_LIFE,
};
use krb_crypto::Scheduled;
use krb_kdc::Clock;
use krb_netsim::{Endpoint, Router};
use krb_telemetry::{ClockUs, Component, EventKind, Field, Journal, TraceCtx, TraceId};
use std::sync::Arc;

/// One workstation on the (simulated) network.
pub struct Workstation {
    /// Our network address — what ends up inside tickets.
    pub addr: HostAddr,
    /// Source endpoint for client traffic.
    pub endpoint: Endpoint,
    /// The local realm.
    pub realm: String,
    /// KDC endpoints in preference order (master first).
    pub kdc_endpoints: Vec<Endpoint>,
    /// The per-login ticket file.
    pub cache: CredentialCache,
    /// This host's clock (skewable for §4.3 experiments).
    pub clock: Clock,
    /// KDC endpoints of remote realms, for cross-realm exchanges (§7.2).
    remote_kdcs: Vec<(String, Endpoint)>,
    /// Last timestamp placed in an authenticator. Authenticators must be
    /// unique per (client, second) — a real clock ticks between requests;
    /// a simulated one may not, so we enforce monotonicity ourselves.
    last_auth_ts: u32,
    /// Journal + microsecond clock + trace seed, when tracing is enabled.
    tracing: Option<(Arc<Journal>, ClockUs, u64)>,
    /// `(shard, nshards)` when minted trace ids must land on one shard of
    /// a sharded KDC journal (see [`Workstation::enable_tracing_sharded`]).
    trace_align: Option<(u64, u64)>,
    /// Logins performed — the counter behind deterministic trace minting.
    logins: u64,
    /// The active login's trace id; every hop of this session carries it.
    current_trace: Option<TraceId>,
}

impl Workstation {
    /// Set up a workstation at `addr` in `realm`.
    pub fn new(addr: HostAddr, realm: &str, kdc_endpoints: Vec<Endpoint>, clock: Clock) -> Self {
        Workstation {
            addr,
            endpoint: Endpoint::new(addr, 1023),
            realm: realm.to_string(),
            kdc_endpoints,
            cache: CredentialCache::new(),
            clock,
            remote_kdcs: Vec::new(),
            last_auth_ts: 0,
            tracing: None,
            trace_align: None,
            logins: 0,
            current_trace: None,
        }
    }

    /// Enable per-login tracing: each `kinit` mints
    /// `TraceId::derive(seed, n)` for login number `n`, journals the
    /// workstation-side hops, and stamps the id onto every packet this
    /// workstation sends (simulator metadata — never the V4 wire bytes).
    pub fn enable_tracing(&mut self, journal: Arc<Journal>, clock_us: ClockUs, seed: u64) {
        self.tracing = Some((journal, clock_us, seed));
        self.trace_align = None;
    }

    /// Like [`Workstation::enable_tracing`], but every minted trace id is
    /// re-aligned so `trace % nshards == shard`. A KDC with a sharded
    /// journal sink routes events by exactly that remainder, so this
    /// workstation's KDC hops land in its own worker's journal — the
    /// per-shard rings stay a pure function of each worker's own
    /// execution even when many workers hammer one shared KDC.
    pub fn enable_tracing_sharded(
        &mut self,
        journal: Arc<Journal>,
        clock_us: ClockUs,
        seed: u64,
        shard: u64,
        nshards: u64,
    ) {
        self.tracing = Some((journal, clock_us, seed));
        self.trace_align = Some((shard, nshards.max(1)));
    }

    /// The active login's trace id, if tracing is enabled.
    pub fn current_trace(&self) -> Option<TraceId> {
        self.tracing.as_ref()?;
        self.current_trace
    }

    /// A context for journaling at this hop, if tracing is on and a login
    /// is active.
    fn trace_ctx(&self) -> Option<TraceCtx> {
        let (journal, clock, _) = self.tracing.as_ref()?;
        let trace = self.current_trace?;
        Some(TraceCtx::new(Arc::clone(journal), ClockUs::clone(clock), trace))
    }

    /// Start a new login trace (called by the `kinit` variants).
    fn begin_login_trace(&mut self, username: &str) -> Option<TraceCtx> {
        let (journal, clock, seed) = self.tracing.as_ref()?;
        let mut trace = TraceId::derive(*seed, self.logins);
        if let Some((shard, nshards)) = self.trace_align {
            trace = TraceId(align_trace(trace.0, shard, nshards));
        }
        self.logins += 1;
        self.current_trace = Some(trace);
        let ctx = TraceCtx::new(Arc::clone(journal), ClockUs::clone(clock), trace);
        ctx.record(
            Component::Ws,
            EventKind::LoginStart,
            vec![("user", Field::from(username))],
        );
        Some(ctx)
    }

    /// Journal the login verdict at the workstation.
    fn record_login_outcome<T>(ctx: Option<&TraceCtx>, result: &Result<T, ToolError>) {
        let Some(ctx) = ctx else { return };
        match result {
            Ok(_) => ctx.record(Component::Ws, EventKind::LoginOk, vec![]),
            Err(ToolError::Krb(code)) => ctx.record(
                Component::Ws,
                EventKind::LoginErr,
                vec![("err_kind", Field::from(code.kind())), ("code", Field::from(*code as u8))],
            ),
            Err(ToolError::Net(_)) => ctx.record(
                Component::Ws,
                EventKind::LoginErr,
                vec![("err_kind", Field::from("net"))],
            ),
        }
    }

    /// Current time as this workstation sees it.
    pub fn now(&self) -> u32 {
        (self.clock)()
    }

    /// A timestamp for an authenticator: the clock reading, bumped past
    /// the previous one if the clock has not ticked since.
    fn auth_ts(&mut self) -> u32 {
        let t = self.now().max(self.last_auth_ts + 1);
        self.last_auth_ts = t;
        t
    }

    /// Retries per KDC before falling over to the next (UDP clients
    /// retransmit; the V4 library tried each server several times).
    /// Public so availability tests can budget exactly how many timeouts
    /// a partitioned KDC costs before the slave answers.
    pub const RETRIES_PER_KDC: usize = 3;

    /// Try each KDC in order, with retransmissions, until one answers
    /// (availability, Fig. 10; loss tolerance on the open network).
    fn kdc_rpc(&self, router: &mut Router, request: &[u8]) -> Result<Vec<u8>, ToolError> {
        for &ep in &self.kdc_endpoints {
            for _attempt in 0..Self::RETRIES_PER_KDC {
                match router.rpc_traced(self.endpoint, ep, request, self.current_trace()) {
                    Ok(reply) => return Ok(reply),
                    Err(krb_netsim::NetError::Timeout) => continue,
                    Err(e) => return Err(ToolError::Net(e)),
                }
            }
        }
        Err(ToolError::Net(krb_netsim::NetError::Timeout))
    }

    /// `kinit` / login (§4.2, §6.1): obtain a TGT with the user's password.
    pub fn kinit(
        &mut self,
        router: &mut Router,
        username: &str,
        password: &str,
    ) -> Result<(), ToolError> {
        let ctx = self.begin_login_trace(username);
        let r = self.kinit_inner(router, username, password, ctx.as_ref());
        Self::record_login_outcome(ctx.as_ref(), &r);
        r
    }

    fn kinit_inner(
        &mut self,
        router: &mut Router,
        username: &str,
        password: &str,
        ctx: Option<&TraceCtx>,
    ) -> Result<(), ToolError> {
        let client = Principal::parse(username, &self.realm)?;
        let now = self.now();
        let tgs = Principal::tgs(&self.realm, &self.realm);
        let req = build_as_req(&client, &tgs, DEFAULT_TGT_LIFE, now);
        if let Some(ctx) = ctx {
            ctx.record(Component::Ws, EventKind::AsReq, vec![("client", Field::from(username))]);
        }
        let reply = self.kdc_rpc(router, &req)?;
        let tgt = read_as_reply_with_password(&reply, password, now)?;
        self.cache.initialize(client, tgt);
        Ok(())
    }

    /// Smartcard login (§8's proposed "better solution"): the AS reply is
    /// decrypted *on the card*, so neither the password nor the long-term
    /// key ever enters workstation memory — a trojaned log-in program can
    /// steal at most the bounded-lifetime TGT.
    pub fn kinit_with_card(
        &mut self,
        router: &mut Router,
        card: &mut crate::smartcard::Smartcard,
    ) -> Result<(), ToolError> {
        let owner = card.owner.clone();
        let ctx = self.begin_login_trace(&owner);
        let r = (|| {
            let client = Principal::parse(&owner, &self.realm)?;
            let now = self.now();
            let tgs = Principal::tgs(&self.realm, &self.realm);
            let req = build_as_req(&client, &tgs, DEFAULT_TGT_LIFE, now);
            if let Some(ctx) = &ctx {
                ctx.record(Component::Ws, EventKind::AsReq, vec![("client", Field::from(owner.as_str()))]);
            }
            let reply = self.kdc_rpc(router, &req)?;
            let tgt = card.process_as_reply(&reply, now)?;
            self.cache.initialize(client, tgt);
            Ok(())
        })();
        Self::record_login_outcome(ctx.as_ref(), &r);
        r
    }

    /// The logged-in user, if any.
    pub fn whoami(&self) -> Option<&Principal> {
        self.cache.owner.as_ref()
    }

    /// Get a ticket for `service`, consulting the cache first ("When a
    /// program requires a ticket that has not already been requested",
    /// §4.4) and the TGS otherwise. Handles cross-realm targets by first
    /// fetching a TGT for the remote realm (§7.2).
    pub fn get_service_ticket(
        &mut self,
        router: &mut Router,
        service: &Principal,
    ) -> Result<Credential, ToolError> {
        let now = self.now();
        if let Some(c) = self.cache.get(service, now) {
            return Ok(c.clone());
        }
        let client = self.cache.owner.clone().ok_or(ToolError::Krb(ErrorCode::IntkErr))?;

        // Which TGT do we need: local, or the remote realm's?
        let tgt = if service.realm == self.realm {
            self.cache.tgt(&self.realm, now).cloned()
        } else {
            match self.cache.tgt(&service.realm, now) {
                Some(t) => Some(t.clone()),
                None => {
                    // Ask the local TGS for a cross-realm TGT first. One
                    // schedule covers both the request and the reply.
                    let local_tgt = self
                        .cache
                        .tgt(&self.realm, now)
                        .cloned()
                        .ok_or(ToolError::Krb(ErrorCode::RdApExp))?;
                    let local_sched = Scheduled::new(&local_tgt.key());
                    let remote_tgs = Principal::tgs(&service.realm, &self.realm);
                    if let Some(ctx) = self.trace_ctx() {
                        ctx.record(
                            Component::Ws,
                            EventKind::TgsReq,
                            vec![("service", Field::from(remote_tgs.to_string()))],
                        );
                    }
                    let ts = self.auth_ts();
                    let req = build_tgs_req_with(
                        &local_tgt,
                        &local_sched,
                        &client,
                        self.addr,
                        ts,
                        &remote_tgs,
                        DEFAULT_TGT_LIFE,
                    );
                    let reply = self.kdc_rpc(router, &req)?;
                    let cred = read_tgs_reply_with(&reply, &local_sched, ts)?;
                    self.cache.store(cred.clone());
                    Some(cred)
                }
            }
        }
        .ok_or(ToolError::Krb(ErrorCode::RdApExp))?;

        // Ask the issuing realm's TGS (remote for cross-realm). If a
        // retransmitted request was answered with "replay" — meaning the
        // original arrived but its reply was lost — rebuild with a fresh
        // authenticator and try again. The TGT session-key schedule is
        // built once here and reused for every attempt's request + reply.
        let tgt_sched = Scheduled::new(&tgt.key());
        if let Some(ctx) = self.trace_ctx() {
            ctx.record(
                Component::Ws,
                EventKind::TgsReq,
                vec![("service", Field::from(service.to_string()))],
            );
        }
        let mut last = ErrorCode::IntkErr;
        for _ in 0..Self::RETRIES_PER_KDC {
            let ts = self.auth_ts();
            let req = build_tgs_req_with(
                &tgt,
                &tgt_sched,
                &client,
                self.addr,
                ts,
                service,
                DEFAULT_SERVICE_LIFE,
            );
            let reply = if service.realm == self.realm {
                self.kdc_rpc(router, &req)?
            } else {
                // The remote KDC endpoint must be routable; callers register
                // it under the remote realm name via `add_remote_kdc`.
                let ep = self
                    .remote_kdcs
                    .iter()
                    .find(|(r, _)| r == &service.realm)
                    .map(|(_, e)| *e)
                    .ok_or(ToolError::Krb(ErrorCode::KdcUnknownRealm))?;
                router
                    .rpc_traced(self.endpoint, ep, &req, self.current_trace())
                    .map_err(ToolError::Net)?
            };
            match read_tgs_reply_with(&reply, &tgt_sched, ts) {
                Ok(cred) => {
                    self.cache.store(cred.clone());
                    return Ok(cred);
                }
                Err(ErrorCode::RdApRepeat) => {
                    last = ErrorCode::RdApRepeat;
                    continue;
                }
                Err(e) => return Err(ToolError::Krb(e)),
            }
        }
        Err(ToolError::Krb(last))
    }

    /// Build an `AP_REQ` for `service`, fetching the ticket if needed —
    /// the workstation-side half of "Kerberizing" an application client.
    pub fn mk_request(
        &mut self,
        router: &mut Router,
        service: &Principal,
        cksum: u32,
        mutual: bool,
    ) -> Result<(ApReq, Credential), ToolError> {
        let cred = self.get_service_ticket(router, service)?;
        let client = self.cache.owner.clone().ok_or(ToolError::Krb(ErrorCode::IntkErr))?;
        let ts = self.auth_ts();
        let ap = krb_mk_req(
            &cred.ticket,
            &cred.issuing_realm,
            &cred.key(),
            &client,
            self.addr,
            ts,
            cksum,
            mutual,
        );
        if let Some(ctx) = self.trace_ctx() {
            ctx.record(
                Component::Ws,
                EventKind::ApSent,
                vec![("service", Field::from(service.to_string())), ("mutual", Field::from(u8::from(mutual)))],
            );
        }
        Ok((ap, cred))
    }

    /// `klist` (§6.1): one line per ticket, as the user would see.
    pub fn klist(&self) -> Vec<String> {
        let now = self.now();
        self.cache
            .list()
            .iter()
            .map(|c| {
                let state = if c.expired(now) { "EXPIRED" } else { "valid" };
                format!(
                    "{}  issued={} expires={} [{}]",
                    c.service, c.issued, c.expires(), state
                )
            })
            .collect()
    }

    /// `kdestroy` (§6.1): destroy all tickets (logout).
    pub fn kdestroy(&mut self) {
        self.cache.destroy();
    }

    /// Register the KDC endpoint of a remote realm for cross-realm use.
    pub fn add_remote_kdc(&mut self, realm: &str, ep: Endpoint) {
        self.remote_kdcs.push((realm.to_string(), ep));
    }

    /// Remote realm KDCs known to this workstation.
    pub fn remote_kdc_table(&self) -> &[(String, Endpoint)] {
        &self.remote_kdcs
    }
}

/// Re-align a trace id onto `shard` modulo `nshards`, preserving the id's
/// high bits (so aligned ids from different seeds stay distinct). This is
/// the workstation half of the sharded-journal contract: a KDC with a
/// sharded sink routes each event to `trace % nshards`.
pub fn align_trace(trace: u64, shard: u64, nshards: u64) -> u64 {
    if nshards <= 1 {
        return trace;
    }
    let base = trace - (trace % nshards);
    if base > u64::MAX - shard {
        base - nshards + shard
    } else {
        base + shard
    }
}

#[cfg(test)]
mod trace_align_tests {
    use super::align_trace;

    #[test]
    fn aligned_ids_land_on_their_shard() {
        for nshards in [1u64, 2, 3, 4, 7, 16] {
            for shard in 0..nshards {
                for trace in [0u64, 1, 5, 1 << 40, u64::MAX - 3, u64::MAX] {
                    let aligned = align_trace(trace, shard, nshards);
                    if nshards > 1 {
                        assert_eq!(aligned % nshards, shard, "trace={trace} nshards={nshards}");
                    } else {
                        assert_eq!(aligned, trace);
                    }
                }
            }
        }
    }

    #[test]
    fn alignment_preserves_distinctness_within_a_shard() {
        // Two traces that differ above the shard bits stay distinct.
        let a = align_trace(0x1234_5678_9abc_0000, 3, 4);
        let b = align_trace(0x1234_5678_9abd_0000, 3, 4);
        assert_ne!(a, b);
    }
}
