//! `krb-stat`: the KDC load benchmark behind `BENCH_kdc.json`.
//!
//! The paper's capacity argument (§4: one master plus read-only slaves
//! absorb a campus of workstations) is quantitative, so this reproduction
//! keeps a machine-readable measurement of what its KDC actually sustains.
//! [`run_load`] drives a configurable number of login cycles — each one a
//! fresh workstation doing `kinit` (AS exchange) followed by a service
//! ticket request (TGS exchange) — and reports throughput plus the KDC's
//! own latency histograms as a JSON snapshot.
//!
//! Two load shapes ([`StatMode`]):
//!
//! - **shared** (default for `threads > 1`): every worker thread hammers
//!   *one* KDC in one realm — the configuration the concurrent-KDC
//!   refactor (DESIGN.md §15) exists for. Workers share the snapshot
//!   store, the striped replay cache, and the schedule cache; only the
//!   simulated network stack is per-worker.
//! - **isolated** (`--isolated`, default for `threads == 1`): each worker
//!   drives its own realm (its own master KDC on its own simulated
//!   network). This measures aggregate fleet throughput with zero
//!   cross-thread sharing, and is the classic pre-§15 semantics of
//!   `--threads`.
//!
//! Two clock modes, per the telemetry determinism contract
//! (`krb-telemetry` crate docs):
//!
//! - **wall** (default): spans are timed by
//!   [`krb_telemetry::wall_clock_us`] and throughput by real elapsed time —
//!   the numbers in a committed `BENCH_kdc.json` mean microseconds of
//!   hardware time.
//! - **sim** (`sim_clock: true`): spans are timed deterministically and
//!   "elapsed" is simulated busy time, so the whole report — bytes
//!   included — is a deterministic function of the config. CI
//!   smoke-checks this mode in *both* load shapes; the regression tests
//!   below pin two same-seed runs byte-identical.
//!
//! ## Why shared-mode sim runs stay byte-identical
//!
//! Real threads race, so shared mode earns determinism structurally
//! rather than by scheduling:
//!
//! - Realm time is frozen at `START`; every protocol timestamp is a
//!   constant. Authenticators stay unique because each login's session
//!   key (and therefore its authenticator ciphertext hash) is distinct.
//! - The KDC's span clock is pinned to frozen realm time: latency samples
//!   are all zero, so histograms depend only on deterministic counts.
//!   Worker-side journals use per-worker seeded LCG clocks instead.
//! - Every key schedule is pre-warmed through a scratch registry before
//!   measurement, so the sched-cache counters can't depend on which
//!   thread loses a first-touch race: the measured run is all hits.
//! - Each worker journals into its own shard ring, and the KDC routes its
//!   events by trace id onto the same shard
//!   ([`Workstation::enable_tracing_sharded`]); the combined dump is the
//!   deterministic `(clock, shard, seq)` merge of
//!   [`krb_telemetry::merge_render`].

use crate::{kdb_init, register_service, register_user, ToolError, Workstation};
use kerberos::Principal;
use krb_kdb::MemStore;
use krb_kdc::{shared_clock, Deployment, Kdc, KdcRole, KdcService, RealmConfig};
use krb_netsim::{ports, Endpoint, NetConfig, Router, SimNet};
use krb_telemetry::{
    fixed_clock_us, lcg_clock_us, merge_render, wall_clock_us, ClockUs, HistogramSummary, Journal,
    Registry,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::AtomicU32;
use std::sync::Arc;

const REALM: &str = "BENCH.MIT.EDU";
const START: u32 = 600_000_000;
const KDC_ADDR: [u8; 4] = [18, 72, 0, 10];
const WS_ADDR: [u8; 4] = [18, 72, 0, 77];
/// Worker seeds diverge by this odd multiplier (golden-ratio mix).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Shared mode caps users so every schedule the loop can touch (users +
/// krbtgt + the bench service) fits the KDC's 64-entry LRU at once —
/// otherwise eviction races would make hit/miss totals run-dependent.
const SHARED_MAX_USERS: usize = 62;

/// Which realm topology the worker threads drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatMode {
    /// All workers hammer one KDC in one shared realm.
    Shared,
    /// Each worker drives its own private realm (pre-§15 semantics).
    Isolated,
}

impl StatMode {
    /// The string recorded under `"mode"` in the JSON snapshot.
    pub fn as_str(self) -> &'static str {
        match self {
            StatMode::Shared => "shared",
            StatMode::Isolated => "isolated",
        }
    }
}

/// Load-loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct StatConfig {
    /// Login cycles to run *per thread* (each is one AS + one TGS
    /// exchange).
    pub iters: usize,
    /// Distinct principals the cycles draw from.
    pub users: usize,
    /// Seeds the database, the user pick sequence, and (in sim mode) the
    /// latency clock.
    pub seed: u64,
    /// Time spans with a deterministic simulated clock instead of the
    /// wall clock; makes the whole report reproducible.
    pub sim_clock: bool,
    /// Worker threads. In shared mode they all drive one KDC; in isolated
    /// mode each drives its own realm with a seed derived from `seed`.
    /// Either way all KDCs report into one shared registry. 1 = the
    /// classic single-threaded loop.
    pub threads: usize,
    /// Topology override. `None` picks [`StatMode::Shared`] when
    /// `threads > 1` and [`StatMode::Isolated`] otherwise.
    pub mode: Option<StatMode>,
}

impl Default for StatConfig {
    fn default() -> Self {
        StatConfig { iters: 200, users: 8, seed: 42, sim_clock: false, threads: 1, mode: None }
    }
}

impl StatConfig {
    /// The fast deterministic configuration `scripts/check.sh` runs.
    pub fn smoke() -> Self {
        StatConfig { iters: 25, users: 4, seed: 42, sim_clock: true, threads: 1, mode: None }
    }

    /// The topology this config runs: an explicit `mode` wins, otherwise
    /// multi-threaded runs share one realm and single-threaded runs keep
    /// the classic isolated loop.
    pub fn resolved_mode(&self) -> StatMode {
        match self.mode {
            Some(m) => m,
            None if self.threads > 1 => StatMode::Shared,
            None => StatMode::Isolated,
        }
    }
}

/// What one load run produced.
#[derive(Clone, Debug)]
pub struct StatReport {
    /// The `BENCH_kdc.json` payload.
    pub json: String,
    /// The KDC registry's full Prometheus-style text export.
    pub render: String,
    /// AS exchanges served.
    pub as_ok: u64,
    /// TGS exchanges served.
    pub tgs_ok: u64,
    /// Error replies (should be 0 under this well-formed load).
    pub errors: u64,
    /// Wall or simulated microseconds the loop took.
    pub elapsed_us: u64,
    /// The run's event journals as one text dump. Isolated mode
    /// concatenates the per-worker journals under `# worker N` headers;
    /// shared mode merges the per-shard rings by `(clock, shard, seq)`
    /// with a `shard=NN` prefix per line. In sim mode either dump is
    /// byte-identical across same-seed runs.
    pub journal_dump: String,
    /// Journal events recorded across all workers.
    pub journal_events: u64,
    /// Journal events evicted by the ring buffer across all workers.
    pub journal_dropped: u64,
}

/// Run the AS+TGS load loop in the config's [`StatMode`].
pub fn run_load(cfg: &StatConfig) -> Result<StatReport, ToolError> {
    match cfg.resolved_mode() {
        StatMode::Shared => run_shared(cfg),
        StatMode::Isolated => run_isolated(cfg),
    }
}

/// Isolated mode: each worker thread drives its own realm and every KDC
/// reports into one shared registry (counter and histogram updates are
/// commutative, so the aggregate snapshot in sim mode is still a
/// deterministic function of the config).
fn run_isolated(cfg: &StatConfig) -> Result<StatReport, ToolError> {
    let iters = cfg.iters.max(1);
    let users = cfg.users.clamp(1, 64);
    let threads = cfg.threads.clamp(1, 64);

    let registry = Registry::shared();
    // One journal per worker: each owns its seq counter, so the combined
    // dump (worker-order concatenation) is deterministic under sim clocks.
    let journals: Vec<Arc<Journal>> = (0..threads).map(|_| Journal::shared()).collect();
    let wall = wall_clock_us();
    let t0 = wall();
    if threads == 1 {
        run_isolated_worker(cfg, 0, iters, users, &registry, &journals[0])?;
    } else {
        let failure = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let registry = &registry;
                    let journal = &journals[t];
                    scope.spawn(move || {
                        run_isolated_worker(cfg, t as u64, iters, users, registry, journal)
                    })
                })
                .collect();
            let mut first_err = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => first_err = first_err.or(Some(e)),
                    Err(_) => {
                        first_err =
                            first_err.or(Some(ToolError::Krb(kerberos::ErrorCode::KdcGenErr)));
                    }
                }
            }
            first_err
        });
        if let Some(e) = failure {
            return Err(e);
        }
    }
    let wall_elapsed = wall().saturating_sub(t0).max(1);

    // In sim mode, "elapsed" is the KDCs' own simulated busy time — a
    // deterministic function of the seed; wall time would leak real
    // hardware timing into the snapshot.
    let as_hist = registry.histogram("kdc_as_latency_us").summary();
    let tgs_hist = registry.histogram("kdc_tgs_latency_us").summary();
    let elapsed_us = if cfg.sim_clock {
        (as_hist.sum + tgs_hist.sum).max(1)
    } else {
        wall_elapsed
    };

    let mut journal_dump = String::new();
    let mut journal_events = 0u64;
    let mut journal_dropped = 0u64;
    for (t, journal) in journals.iter().enumerate() {
        journal_dump.push_str(&format!("# worker {t}\n"));
        journal_dump.push_str(&journal.render());
        journal_events += journal.events_recorded();
        journal_dropped += journal.events_dropped();
    }

    Ok(finish_report(
        cfg, StatMode::Isolated, iters, users, threads, elapsed_us, &registry, journal_dump,
        journal_events, journal_dropped,
    ))
}

/// One isolated worker: a fresh realm on its own simulated network,
/// `iters` login cycles, all metrics reported into `registry`.
/// `thread_idx` derives the per-worker seed so the fleet does not run in
/// lockstep.
fn run_isolated_worker(
    cfg: &StatConfig,
    thread_idx: u64,
    iters: usize,
    users: usize,
    registry: &Arc<Registry>,
    journal: &Arc<Journal>,
) -> Result<(), ToolError> {
    let seed = cfg.seed ^ thread_idx.wrapping_mul(SEED_MIX);
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let mut boot = kdb_init(REALM, "bench-master-pw", START, seed)
        .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;
    for u in 0..users {
        register_user(&mut boot.db, &format!("user{u}"), "", &format!("pw-{u}"), START)
            .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;
    }
    let mut keygen = krb_crypto::KeyGenerator::new(StdRng::seed_from_u64(seed ^ 0x5EED));
    register_service(&mut boot.db, "rcmd", "bench", START, &mut keygen)
        .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;

    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), KDC_ADDR, 0, START,
    )
    .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;

    let clock_us = if cfg.sim_clock {
        lcg_clock_us(seed, 40, 400)
    } else {
        wall_clock_us()
    };
    dep.master.set_telemetry(Arc::clone(registry), ClockUs::clone(&clock_us));
    dep.master.set_journal(Arc::clone(journal));

    let service = Principal::parse("rcmd.bench", REALM)?;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..iters {
        // Advance realm time one second per cycle: authenticators get
        // fresh timestamps and ticket lifetimes still hold easily.
        dep.advance_time(1);
        let u: usize = rng.random_range(0..users);
        let mut ws = Workstation::new(
            WS_ADDR,
            REALM,
            dep.kdc_endpoints(),
            shared_clock(Arc::clone(&dep.clock_cell)),
        );
        // A fresh workstation per cycle means a fresh login counter, so
        // derive each cycle's trace seed from the cycle index.
        ws.enable_tracing(
            Arc::clone(journal),
            ClockUs::clone(&clock_us),
            seed.wrapping_add(i as u64),
        );
        ws.kinit(&mut router, &format!("user{u}"), &format!("pw-{u}"))?;
        ws.mk_request(&mut router, &service, 0, false)?;
    }
    Ok(())
}

/// Shared mode: one KDC, one realm, every worker thread hammering it
/// through its own simulated network stack. This is the configuration the
/// snapshot-swapped store and striped replay cache exist for — requests
/// run concurrently through `&self` with no realm-wide lock.
fn run_shared(cfg: &StatConfig) -> Result<StatReport, ToolError> {
    let intk = |_| ToolError::Krb(kerberos::ErrorCode::IntkErr);
    let iters = cfg.iters.max(1);
    let users = cfg.users.clamp(1, SHARED_MAX_USERS);
    let threads = cfg.threads.clamp(1, 64);

    let seed = cfg.seed;
    let mut boot = kdb_init(REALM, "bench-master-pw", START, seed).map_err(intk)?;
    for u in 0..users {
        register_user(&mut boot.db, &format!("user{u}"), "", &format!("pw-{u}"), START)
            .map_err(intk)?;
    }
    let mut keygen = krb_crypto::KeyGenerator::new(StdRng::seed_from_u64(seed ^ 0x5EED));
    register_service(&mut boot.db, "rcmd", "bench", START, &mut keygen).map_err(intk)?;

    // Realm time stays frozen at START: workers advancing a shared clock
    // would hand each cycle a race-dependent timestamp. Authenticators
    // stay unique anyway — every login has a fresh session key, so every
    // authenticator hashes differently in the replay cache.
    let clock_cell = Arc::new(AtomicU32::new(START));
    let kdc = Arc::new(Kdc::new(
        boot.db,
        RealmConfig::new(REALM),
        shared_clock(Arc::clone(&clock_cell)),
        KdcRole::Master,
        0xA11CE,
    ));

    warmup_shared(&kdc, &clock_cell, users)?;

    let registry = Registry::shared();
    let journals: Vec<Arc<Journal>> = (0..threads).map(|_| Journal::shared()).collect();
    let kdc_clock: ClockUs = if cfg.sim_clock {
        // One LCG shared by racing handlers would assign run-dependent
        // timestamps; pin the KDC's span clock to frozen realm time so
        // its histograms and journal stamps depend only on counts.
        fixed_clock_us(u64::from(START) * 1_000_000)
    } else {
        wall_clock_us()
    };
    kdc.set_telemetry(Arc::clone(&registry), kdc_clock);
    kdc.set_journal_shards(journals.clone());

    let wall = wall_clock_us();
    let t0 = wall();
    let mut busy: Vec<u64> = Vec::with_capacity(threads);
    if threads == 1 {
        busy.push(run_shared_worker(
            cfg, 0, iters, users, threads, &kdc, &clock_cell, &journals[0],
        )?);
    } else {
        let joined = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let kdc = &kdc;
                    let clock_cell = &clock_cell;
                    let journal = &journals[t];
                    scope.spawn(move || {
                        run_shared_worker(cfg, t, iters, users, threads, kdc, clock_cell, journal)
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(threads);
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(_) => results.push(Err(ToolError::Krb(kerberos::ErrorCode::KdcGenErr))),
                }
            }
            results
        });
        for r in joined {
            busy.push(r?);
        }
    }
    let wall_elapsed = wall().saturating_sub(t0).max(1);

    // Sim-mode elapsed is the slowest worker's simulated busy time — the
    // parallel-run analogue of wall time, and a pure function of the
    // per-worker seeds.
    let elapsed_us = if cfg.sim_clock {
        busy.iter().copied().max().unwrap_or(1).max(1)
    } else {
        wall_elapsed
    };

    let journal_dump = merge_render(&journals);
    let journal_events = journals.iter().map(|j| j.events_recorded()).sum();
    let journal_dropped = journals.iter().map(|j| j.events_dropped()).sum();

    Ok(finish_report(
        cfg, StatMode::Shared, iters, users, threads, elapsed_us, &registry, journal_dump,
        journal_events, journal_dropped,
    ))
}

/// Pre-warm every key schedule the shared load loop can touch (each
/// user's key, the krbtgt key, the bench service key) through a scratch
/// registry. The measured run then serves schedule lookups entirely from
/// cache: its hit/miss counters are a pure function of the config instead
/// of depending on which thread loses the first-touch race.
fn warmup_shared(
    kdc: &Arc<Kdc<MemStore>>,
    clock_cell: &Arc<AtomicU32>,
    users: usize,
) -> Result<(), ToolError> {
    kdc.set_telemetry(Registry::shared(), fixed_clock_us(u64::from(START) * 1_000_000));
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    router.serve(Endpoint::new(KDC_ADDR, ports::KDC), KdcService(Arc::clone(kdc)));
    let service = Principal::parse("rcmd.bench", REALM)?;
    for u in 0..users {
        let mut ws = Workstation::new(
            [18, 72, 99, 77],
            REALM,
            vec![Endpoint::new(KDC_ADDR, ports::KDC)],
            shared_clock(Arc::clone(clock_cell)),
        );
        ws.kinit(&mut router, &format!("user{u}"), &format!("pw-{u}"))?;
        if u == 0 {
            ws.mk_request(&mut router, &service, 0, false)?;
        }
    }
    Ok(())
}

/// One shared-mode worker: its own simulated network serving the *shared*
/// KDC, `iters` login cycles from per-worker seeds, journal events pinned
/// to this worker's shard ring. Returns the worker's final simulated
/// clock reading (its busy time).
#[allow(clippy::too_many_arguments)]
fn run_shared_worker(
    cfg: &StatConfig,
    thread_idx: usize,
    iters: usize,
    users: usize,
    threads: usize,
    kdc: &Arc<Kdc<MemStore>>,
    clock_cell: &Arc<AtomicU32>,
    journal: &Arc<Journal>,
) -> Result<u64, ToolError> {
    let seed = cfg.seed ^ (thread_idx as u64).wrapping_mul(SEED_MIX);
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    router.serve(Endpoint::new(KDC_ADDR, ports::KDC), KdcService(Arc::clone(kdc)));
    let clock_us = if cfg.sim_clock {
        lcg_clock_us(seed, 40, 400)
    } else {
        wall_clock_us()
    };
    let service = Principal::parse("rcmd.bench", REALM)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Distinct workstation address per worker, so ticket address checks
    // exercise distinct hosts concurrently.
    let ws_addr = [18, 72, thread_idx as u8, 77];
    for i in 0..iters {
        let u: usize = rng.random_range(0..users);
        let mut ws = Workstation::new(
            ws_addr,
            REALM,
            vec![Endpoint::new(KDC_ADDR, ports::KDC)],
            shared_clock(Arc::clone(clock_cell)),
        );
        // Trace ids aligned onto this worker's shard: the KDC's sharded
        // sink routes by `trace % threads`, so this worker's KDC hops
        // land in this worker's own journal ring.
        ws.enable_tracing_sharded(
            Arc::clone(journal),
            ClockUs::clone(&clock_us),
            seed.wrapping_add(i as u64),
            thread_idx as u64,
            threads as u64,
        );
        ws.kinit(&mut router, &format!("user{u}"), &format!("pw-{u}"))?;
        ws.mk_request(&mut router, &service, 0, false)?;
    }
    Ok(clock_us())
}

/// Pull the aggregate numbers out of `registry` and assemble the report.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    cfg: &StatConfig,
    mode: StatMode,
    iters: usize,
    users: usize,
    threads: usize,
    elapsed_us: u64,
    registry: &Arc<Registry>,
    journal_dump: String,
    journal_events: u64,
    journal_dropped: u64,
) -> StatReport {
    let as_hist = registry.histogram("kdc_as_latency_us").summary();
    let tgs_hist = registry.histogram("kdc_tgs_latency_us").summary();
    let as_ok = registry.counter_value("kdc_as_ok_total");
    let tgs_ok = registry.counter_value("kdc_tgs_ok_total");
    let errors = registry.counter_value("kdc_error_total");
    let sched_hits = registry.counter_value("kdc_sched_cache_hits_total");
    let sched_misses = registry.counter_value("kdc_sched_cache_misses_total");

    let json = render_json(
        cfg, iters, users, threads, mode, elapsed_us, as_ok, tgs_ok, errors, sched_hits,
        sched_misses, journal_events, journal_dropped, &as_hist, &tgs_hist, "",
    );
    StatReport {
        json,
        render: registry.render(),
        as_ok,
        tgs_ok,
        errors,
        elapsed_us,
        journal_dump,
        journal_events,
        journal_dropped,
    }
}

/// Run the shared-realm load at each thread count and emit one combined
/// snapshot: the base fields describe the first count's run, plus a
/// `"scaling"` array with one row per count. `speedup` is each row's
/// total (AS+TGS) throughput relative to the in-run **1-thread** row —
/// the single-threaded baseline is the only row against which "speedup"
/// means anything. If the sweep carries no 1-thread row (custom counts),
/// the first row stands in and every speedup is relative to it.
pub fn run_scale(cfg: &StatConfig, thread_counts: &[usize]) -> Result<StatReport, ToolError> {
    let counts: &[usize] = if thread_counts.is_empty() { &[1] } else { thread_counts };
    let mut base: Option<StatReport> = None;
    let mut rows: Vec<(usize, u64, f64, f64)> = Vec::new();
    for &threads in counts {
        let mut run_cfg = *cfg;
        run_cfg.threads = threads;
        run_cfg.mode = Some(StatMode::Shared);
        let report = run_load(&run_cfg)?;
        rows.push((
            threads,
            report.elapsed_us,
            per_sec(report.as_ok, report.elapsed_us),
            per_sec(report.tgs_ok, report.elapsed_us),
        ));
        if base.is_none() {
            base = Some(report);
        }
    }
    let mut base = match base {
        Some(b) => b,
        None => return Err(ToolError::Krb(kerberos::ErrorCode::KdcGenErr)),
    };
    let base_row = rows.iter().find(|(t, ..)| *t == 1).or_else(|| rows.first());
    let base_total = base_row.map(|(_, _, a, t)| a + t).unwrap_or(0.0);
    let rows_json: Vec<String> = rows
        .iter()
        .map(|(t, e, asps, tgsps)| {
            let speedup = if base_total > 0.0 { (asps + tgsps) / base_total } else { 0.0 };
            format!(
                "    {{\"threads\": {t}, \"elapsed_us\": {e}, \"as_per_sec\": {asps:.2}, \
                 \"tgs_per_sec\": {tgsps:.2}, \"speedup\": {speedup:.2}}}"
            )
        })
        .collect();
    // Splice the scaling array in before the snapshot's closing brace.
    let mut json = base.json.trim_end().to_string();
    json.pop();
    while json.ends_with(['\n', ' ']) {
        json.pop();
    }
    json.push_str(",\n  \"scaling\": [\n");
    json.push_str(&rows_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    base.json = json;
    Ok(base)
}

fn per_sec(count: u64, elapsed_us: u64) -> f64 {
    (count as f64) * 1_000_000.0 / (elapsed_us.max(1) as f64)
}

/// Regression threshold for [`drift_warning`], in percent of the
/// committed throughput.
pub const DRIFT_TOLERANCE_PCT: f64 = 15.0;

/// First top-level numeric field named `key` in our hand-rolled JSON.
/// The emitter writes base fields before the `"scaling"` array, so the
/// first match is the snapshot-level value, not a per-row duplicate.
fn json_f64_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare a fresh run against the previously committed `BENCH_kdc.json`
/// and describe bench rot: returns a warning line when the run's total
/// AS+TGS throughput sits more than [`DRIFT_TOLERANCE_PCT`] percent
/// below the committed snapshot's, `None` when within budget or when
/// either side lacks the throughput fields (first run, fresh clone).
/// Apples-to-apples is the caller's concern — `krb-stat` compares the
/// file it is about to overwrite, which was produced by the same
/// configuration it just ran.
pub fn drift_warning(current_json: &str, committed_json: &str) -> Option<String> {
    let total = |json: &str| {
        Some(json_f64_field(json, "as_per_sec")? + json_f64_field(json, "tgs_per_sec")?)
    };
    let cur = total(current_json)?;
    let old = total(committed_json)?;
    if old <= 0.0 {
        return None;
    }
    let drop_pct = (old - cur) / old * 100.0;
    if drop_pct > DRIFT_TOLERANCE_PCT {
        Some(format!(
            "krb-stat: drift warning: AS+TGS throughput {cur:.2}/s is {drop_pct:.1}% below the \
             committed BENCH_kdc.json ({old:.2}/s; tolerance {DRIFT_TOLERANCE_PCT:.0}%) — \
             investigate or regenerate the baseline"
        ))
    } else {
        None
    }
}

fn latency_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.p50, s.p95, s.p99, s.max
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &StatConfig,
    iters: usize,
    users: usize,
    threads: usize,
    mode: StatMode,
    elapsed_us: u64,
    as_ok: u64,
    tgs_ok: u64,
    errors: u64,
    sched_hits: u64,
    sched_misses: u64,
    journal_events: u64,
    journal_dropped: u64,
    as_hist: &HistogramSummary,
    tgs_hist: &HistogramSummary,
    extra: &str,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kdc_load\",\n",
            "  \"iters\": {iters},\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"threads\": {threads},\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"clock\": \"{clock}\",\n",
            "  \"elapsed_us\": {elapsed},\n",
            "  \"as_ok\": {as_ok},\n",
            "  \"tgs_ok\": {tgs_ok},\n",
            "  \"errors\": {errors},\n",
            "  \"as_per_sec\": {asps:.2},\n",
            "  \"tgs_per_sec\": {tgsps:.2},\n",
            "  \"sched_cache\": {{\"hits\": {shits}, \"misses\": {smisses}}},\n",
            "  \"journal\": {{\"events\": {jevents}, \"dropped\": {jdropped}}},\n",
            "  \"latency_us\": {{\"as\": {aslat}, \"tgs\": {tgslat}}}{extra}\n",
            "}}\n",
        ),
        iters = iters,
        users = users,
        seed = cfg.seed,
        threads = threads,
        mode = mode.as_str(),
        clock = if cfg.sim_clock { "sim" } else { "wall" },
        elapsed = elapsed_us,
        as_ok = as_ok,
        tgs_ok = tgs_ok,
        errors = errors,
        asps = per_sec(as_ok, elapsed_us),
        tgsps = per_sec(tgs_ok, elapsed_us),
        shits = sched_hits,
        smisses = sched_misses,
        jevents = journal_events,
        jdropped = journal_dropped,
        aslat = latency_json(as_hist),
        tgslat = latency_json(tgs_hist),
        extra = extra,
    )
}

/// Keys a well-formed `BENCH_kdc.json` must contain; `scripts/check.sh`
/// greps for these and the schema test below asserts them.
pub const REQUIRED_JSON_KEYS: &[&str] = &[
    "\"bench\"",
    "\"iters\"",
    "\"seed\"",
    "\"threads\"",
    "\"mode\"",
    "\"clock\"",
    "\"elapsed_us\"",
    "\"as_per_sec\"",
    "\"tgs_per_sec\"",
    "\"sched_cache\"",
    "\"hits\"",
    "\"misses\"",
    "\"journal\"",
    "\"events\"",
    "\"dropped\"",
    "\"latency_us\"",
    "\"p50\"",
    "\"p95\"",
    "\"p99\"",
    "\"max\"",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural JSON check: balanced braces outside strings,
    /// even quote count — enough to catch a mangled emitter without a
    /// JSON dependency.
    fn looks_like_json(s: &str) -> bool {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev_escape = false;
        let mut quotes = 0usize;
        for c in s.chars() {
            if in_str {
                if prev_escape {
                    prev_escape = false;
                } else if c == '\\' {
                    prev_escape = true;
                } else if c == '"' {
                    in_str = false;
                    quotes += 1;
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    quotes += 1;
                }
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str && quotes % 2 == 0
    }

    #[test]
    fn smoke_run_serves_every_cycle_and_emits_the_schema() {
        let report = run_load(&StatConfig::smoke()).unwrap();
        assert_eq!(report.as_ok, 25);
        assert_eq!(report.tgs_ok, 25);
        assert_eq!(report.errors, 0);
        for key in REQUIRED_JSON_KEYS {
            assert!(report.json.contains(key), "missing {key} in:\n{}", report.json);
        }
        // Single-threaded smoke defaults to the classic isolated loop.
        assert!(report.json.contains("\"mode\": \"isolated\""), "{}", report.json);
        assert!(looks_like_json(&report.json), "malformed JSON:\n{}", report.json);
    }

    #[test]
    fn same_seed_sim_runs_are_byte_identical() {
        // The determinism contract, end to end: with the simulated latency
        // clock, the JSON snapshot *and* the full registry export are a
        // pure function of the config.
        let cfg = StatConfig {
            iters: 40, users: 3, seed: 7, sim_clock: true, threads: 1, mode: None,
        };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.json, b.json);
        assert_eq!(a.render, b.render);
        assert_eq!(a.journal_dump, b.journal_dump);
        // And the latency histograms actually saw samples.
        assert!(a.render.contains("kdc_as_latency_us_count 40"), "{}", a.render);
    }

    #[test]
    fn different_seeds_change_the_simulated_snapshot() {
        let a = run_load(&StatConfig {
            iters: 30, users: 3, seed: 1, sim_clock: true, threads: 1, mode: None,
        })
        .unwrap();
        let b = run_load(&StatConfig {
            iters: 30, users: 3, seed: 2, sim_clock: true, threads: 1, mode: None,
        })
        .unwrap();
        assert_ne!(a.render, b.render, "latency clock ignored the seed");
    }

    #[test]
    fn multi_thread_sim_runs_are_deterministic_and_serve_every_cycle() {
        // threads > 1 defaults to shared mode: four workers race one KDC,
        // yet the snapshot stays a pure function of the config (frozen
        // realm clock, pinned KDC span clock, pre-warmed sched cache).
        let cfg = StatConfig {
            iters: 20, users: 3, seed: 9, sim_clock: true, threads: 4, mode: None,
        };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.json, b.json);
        assert_eq!(a.render, b.render);
        // iters is per thread: 4 workers x 20 cycles.
        assert_eq!(a.as_ok, 80);
        assert_eq!(a.tgs_ok, 80);
        assert_eq!(a.errors, 0);
        assert!(a.json.contains("\"threads\": 4"), "{}", a.json);
        assert!(a.json.contains("\"mode\": \"shared\""), "{}", a.json);
    }

    #[test]
    fn isolated_multi_thread_journal_dump_is_byte_identical() {
        // --isolated keeps the pre-§15 semantics: per-worker realms and
        // per-worker journals with their own seq counters, concatenated
        // in worker order — a pure function of the config even with 4
        // threads racing.
        let cfg = StatConfig {
            iters: 15, users: 3, seed: 11, sim_clock: true, threads: 4,
            mode: Some(StatMode::Isolated),
        };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.journal_dump, b.journal_dump);
        assert!(a.journal_events > 0);
        assert_eq!(a.journal_dropped, 0);
        assert!(a.json.contains("\"mode\": \"isolated\""), "{}", a.json);
        for t in 0..4 {
            assert!(a.journal_dump.contains(&format!("# worker {t}\n")), "{}", a.journal_dump);
        }
        // Every cycle journals the full login chain at both hops.
        assert!(a.journal_dump.contains("kind=login_start"));
        assert!(a.journal_dump.contains("comp=kdc kind=as_ok"));
        assert!(a.journal_dump.contains("kind=ap_sent"));
    }

    #[test]
    fn shared_mode_merged_journal_is_byte_identical() {
        // The §15 determinism claim under real concurrency: four workers
        // hammer one KDC, each journaling into its own shard ring (KDC
        // hops route there by aligned trace id), and the merged dump is
        // byte-identical across same-seed runs.
        let cfg = StatConfig {
            iters: 15, users: 3, seed: 11, sim_clock: true, threads: 4,
            mode: Some(StatMode::Shared),
        };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.journal_dump, b.journal_dump);
        assert_eq!(a.json, b.json);
        assert_eq!(a.render, b.render);
        assert!(a.journal_events > 0);
        for shard in 0..4 {
            assert!(
                a.journal_dump.contains(&format!("shard={shard:02} ")),
                "missing shard {shard} in:\n{}",
                a.journal_dump
            );
        }
        // Worker and KDC hops both made it into the merged timeline.
        assert!(a.journal_dump.contains("kind=login_start"));
        assert!(a.journal_dump.contains("comp=kdc kind=as_ok"));
    }

    #[test]
    fn shared_mode_sched_cache_is_all_hits_and_stripes_render() {
        // The warmup contract: by the time measurement starts every key
        // schedule is resident, so the measured run records zero misses
        // and exactly three hits per cycle (client + krbtgt on the AS
        // path, the service on the TGS path).
        let cfg = StatConfig {
            iters: 10, users: 3, seed: 5, sim_clock: true, threads: 2,
            mode: Some(StatMode::Shared),
        };
        let report = run_load(&cfg).unwrap();
        assert_eq!(report.errors, 0);
        assert!(report.json.contains("\"misses\": 0"), "{}", report.json);
        assert!(report.json.contains(&format!("\"hits\": {}", 3 * 2 * 10)), "{}", report.json);
        // The striped replay cache publishes its per-stripe counters in
        // deterministic (zero-padded) label order.
        assert!(report.render.contains("kdc_replay_stripe_hits_total{stripe=\"00\"}"));
        assert!(report.render.contains("kdc_replay_stripe_hits_total{stripe=\"15\"}"));
        assert!(report.render.contains("kdc_store_swaps_total"));
        // Render-ordering determinism: all sixteen stripe counters appear,
        // in ascending label order (the zero-padding is what makes the
        // registry's name sort line up with the numeric stripe index)...
        let positions: Vec<usize> = (0..16)
            .map(|i| {
                let name = format!("kdc_replay_stripe_hits_total{{stripe=\"{i:02}\"}}");
                report.render.find(&name).unwrap_or_else(|| panic!("{name} not rendered"))
            })
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "stripe counters render out of label order"
        );
        // ...and the whole text export is byte-identical run-over-run.
        let again = run_load(&cfg).unwrap();
        assert_eq!(report.render, again.render, "registry render must be deterministic");
    }

    #[test]
    fn run_scale_appends_scaling_rows() {
        let cfg = StatConfig {
            iters: 8, users: 3, seed: 13, sim_clock: true, threads: 1, mode: None,
        };
        let report = run_scale(&cfg, &[1, 2]).unwrap();
        assert!(report.json.contains("\"scaling\": ["), "{}", report.json);
        assert!(report.json.contains("\"speedup\": 1.00"), "{}", report.json);
        assert_eq!(report.json.matches("\"threads\":").count(), 3, "{}", report.json);
        assert!(looks_like_json(&report.json), "malformed JSON:\n{}", report.json);
        // Base fields describe the first (1-thread) run.
        assert!(report.json.contains("\"threads\": 1,"), "{}", report.json);
        assert!(report.json.contains("\"mode\": \"shared\""), "{}", report.json);
    }

    #[test]
    fn sched_cache_counters_reach_the_snapshot() {
        // Every TGS exchange hits the krbtgt warm cache (not the LRU); the
        // per-service LRU sees one miss per distinct service key and hits
        // afterwards. With 25 cycles against a single service principal the
        // hit counter must dominate.
        let report = run_load(&StatConfig::smoke()).unwrap();
        let hits: u64 = report
            .json
            .lines()
            .find(|l| l.contains("\"sched_cache\""))
            .and_then(|l| l.split("\"hits\": ").nth(1))
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("sched_cache.hits in snapshot");
        assert!(hits > 0, "expected schedule-cache hits in:\n{}", report.json);
    }

    #[test]
    fn scale_speedup_baseline_is_the_one_thread_row() {
        // Put the 1-thread run *last* in the sweep: its speedup must still
        // come out 1.00, proving the baseline is found by thread count and
        // not by list position.
        let cfg = StatConfig {
            iters: 8, users: 3, seed: 13, sim_clock: true, threads: 1, mode: None,
        };
        let report = run_scale(&cfg, &[2, 1]).unwrap();
        let one_thread_row = report
            .json
            .lines()
            .find(|l| l.contains("{\"threads\": 1,"))
            .expect("1-thread scaling row");
        assert!(one_thread_row.contains("\"speedup\": 1.00"), "{one_thread_row}");
    }

    #[test]
    fn drift_warning_fires_only_past_the_tolerance() {
        let snapshot = |asps: f64, tgsps: f64| {
            format!(
                "{{\n  \"bench\": \"kdc_load\",\n  \"as_per_sec\": {asps:.2},\n  \
                 \"tgs_per_sec\": {tgsps:.2},\n  \"scaling\": [\n    {{\"threads\": 4, \
                 \"as_per_sec\": 9.99, \"tgs_per_sec\": 9.99}}\n  ]\n}}\n"
            )
        };
        let committed = snapshot(1000.0, 1000.0);
        // 10% down: within the 15% budget.
        assert_eq!(drift_warning(&snapshot(900.0, 900.0), &committed), None);
        // 20% down: rot.
        let warning = drift_warning(&snapshot(800.0, 800.0), &committed)
            .expect("20% regression must warn");
        assert!(warning.contains("20.0% below"), "{warning}");
        assert!(warning.contains("BENCH_kdc.json"), "{warning}");
        // Faster than committed never warns.
        assert_eq!(drift_warning(&snapshot(2000.0, 2000.0), &committed), None);
        // A committed file without the fields (or garbage) is not an error.
        assert_eq!(drift_warning(&snapshot(1.0, 1.0), "{}"), None);
        assert_eq!(drift_warning("not json", &committed), None);
        // The top-level fields win over scaling-row duplicates: a committed
        // snapshot whose only difference is row order must parse the same.
        assert_eq!(
            drift_warning(&committed, &committed),
            None,
            "identical snapshots must never drift"
        );
    }

    #[test]
    fn committed_bench_parses_with_the_drift_scanner() {
        // The scanner must understand the real committed snapshot format,
        // not only the synthetic fixtures above.
        let committed = include_str!("../../../BENCH_kdc.json");
        assert_eq!(json_f64_field(committed, "as_per_sec").map(|v| v > 0.0), Some(true));
        assert_eq!(json_f64_field(committed, "tgs_per_sec").map(|v| v > 0.0), Some(true));
        assert_eq!(drift_warning(committed, committed), None);
    }
}
