//! `krb-stat`: the KDC load benchmark behind `BENCH_kdc.json`.
//!
//! The paper's capacity argument (§4: one master plus read-only slaves
//! absorb a campus of workstations) is quantitative, so this reproduction
//! keeps a machine-readable measurement of what its KDC actually sustains.
//! [`run_load`] stands up an in-process realm (master KDC on the simulated
//! network), then drives a configurable number of login cycles — each one
//! a fresh workstation doing `kinit` (AS exchange) followed by a service
//! ticket request (TGS exchange) — and reports throughput plus the KDC's
//! own latency histograms as a JSON snapshot.
//!
//! Two clock modes, per the telemetry determinism contract
//! (`krb-telemetry` crate docs):
//!
//! - **wall** (default): spans are timed by
//!   [`krb_telemetry::wall_clock_us`] and throughput by real elapsed time —
//!   the numbers in a committed `BENCH_kdc.json` mean microseconds of
//!   hardware time.
//! - **sim** (`sim_clock: true`): spans are timed by a seeded
//!   [`krb_telemetry::lcg_clock_us`] and "elapsed" is the KDC's simulated
//!   busy time, so the whole report — bytes included — is a deterministic
//!   function of the config. CI smoke-checks this mode; the regression
//!   test below pins two same-seed runs byte-identical.

use crate::{kdb_init, register_service, register_user, ToolError, Workstation};
use kerberos::Principal;
use krb_kdc::{shared_clock, Deployment, RealmConfig};
use krb_netsim::{NetConfig, Router, SimNet};
use krb_telemetry::{lcg_clock_us, wall_clock_us, ClockUs, HistogramSummary, Journal, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const REALM: &str = "BENCH.MIT.EDU";
const START: u32 = 600_000_000;
const KDC_ADDR: [u8; 4] = [18, 72, 0, 10];
const WS_ADDR: [u8; 4] = [18, 72, 0, 77];

/// Load-loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct StatConfig {
    /// Login cycles to run *per thread* (each is one AS + one TGS
    /// exchange).
    pub iters: usize,
    /// Distinct principals the cycles draw from.
    pub users: usize,
    /// Seeds the database, the user pick sequence, and (in sim mode) the
    /// latency clock.
    pub seed: u64,
    /// Time spans with a deterministic simulated clock instead of the
    /// wall clock; makes the whole report reproducible.
    pub sim_clock: bool,
    /// Worker threads, each driving its own realm (its own master KDC on
    /// its own simulated network) with a seed derived from `seed`. All
    /// KDCs report into one shared registry, so the snapshot aggregates
    /// the whole fleet. 1 = the classic single-threaded loop.
    pub threads: usize,
}

impl Default for StatConfig {
    fn default() -> Self {
        StatConfig { iters: 200, users: 8, seed: 42, sim_clock: false, threads: 1 }
    }
}

impl StatConfig {
    /// The fast deterministic configuration `scripts/check.sh` runs.
    pub fn smoke() -> Self {
        StatConfig { iters: 25, users: 4, seed: 42, sim_clock: true, threads: 1 }
    }
}

/// What one load run produced.
#[derive(Clone, Debug)]
pub struct StatReport {
    /// The `BENCH_kdc.json` payload.
    pub json: String,
    /// The KDC registry's full Prometheus-style text export.
    pub render: String,
    /// AS exchanges served.
    pub as_ok: u64,
    /// TGS exchanges served.
    pub tgs_ok: u64,
    /// Error replies (should be 0 under this well-formed load).
    pub errors: u64,
    /// Wall or simulated microseconds the loop took.
    pub elapsed_us: u64,
    /// The per-worker event journals, concatenated in worker order under
    /// `# worker N` headers. Each worker owns its journal (its own seq
    /// counter), so in sim mode this dump is byte-identical across
    /// same-seed runs even with thread interleaving.
    pub journal_dump: String,
    /// Journal events recorded across all workers.
    pub journal_events: u64,
    /// Journal events evicted by the ring buffer across all workers.
    pub journal_dropped: u64,
}

/// Run the AS+TGS load loop. With `threads == 1` this is the classic
/// single-realm loop; with more, each worker thread drives its own realm
/// and every KDC reports into one shared registry (counter and histogram
/// updates are commutative atomics, so the aggregate snapshot in sim mode
/// is still a deterministic function of the config).
pub fn run_load(cfg: &StatConfig) -> Result<StatReport, ToolError> {
    let iters = cfg.iters.max(1);
    let users = cfg.users.clamp(1, 64);
    let threads = cfg.threads.clamp(1, 64);

    let registry = Registry::shared();
    // One journal per worker: each owns its seq counter, so the combined
    // dump (worker-order concatenation) is deterministic under sim clocks.
    let journals: Vec<Arc<Journal>> = (0..threads).map(|_| Journal::shared()).collect();
    let wall = wall_clock_us();
    let t0 = wall();
    if threads == 1 {
        run_worker(cfg, 0, iters, users, &registry, &journals[0])?;
    } else {
        let failure = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let registry = &registry;
                    let journal = &journals[t];
                    scope.spawn(move || run_worker(cfg, t as u64, iters, users, registry, journal))
                })
                .collect();
            let mut first_err = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => first_err = first_err.or(Some(e)),
                    Err(_) => {
                        first_err =
                            first_err.or(Some(ToolError::Krb(kerberos::ErrorCode::KdcGenErr)));
                    }
                }
            }
            first_err
        });
        if let Some(e) = failure {
            return Err(e);
        }
    }
    let wall_elapsed = wall().saturating_sub(t0).max(1);

    let as_hist = registry.histogram("kdc_as_latency_us").summary();
    let tgs_hist = registry.histogram("kdc_tgs_latency_us").summary();
    let as_ok = registry.counter_value("kdc_as_ok_total");
    let tgs_ok = registry.counter_value("kdc_tgs_ok_total");
    let errors = registry.counter_value("kdc_error_total");
    let sched_hits = registry.counter_value("kdc_sched_cache_hits_total");
    let sched_misses = registry.counter_value("kdc_sched_cache_misses_total");

    // In sim mode, "elapsed" is the KDCs' own simulated busy time — a
    // deterministic function of the seed; wall time would leak real
    // hardware timing into the snapshot.
    let elapsed_us = if cfg.sim_clock {
        (as_hist.sum + tgs_hist.sum).max(1)
    } else {
        wall_elapsed
    };

    let mut journal_dump = String::new();
    let mut journal_events = 0u64;
    let mut journal_dropped = 0u64;
    for (t, journal) in journals.iter().enumerate() {
        journal_dump.push_str(&format!("# worker {t}\n"));
        journal_dump.push_str(&journal.render());
        journal_events += journal.events_recorded();
        journal_dropped += journal.events_dropped();
    }

    let json = render_json(
        cfg, iters, users, threads, elapsed_us, as_ok, tgs_ok, errors, sched_hits, sched_misses,
        journal_events, journal_dropped, &as_hist, &tgs_hist,
    );
    Ok(StatReport {
        json,
        render: registry.render(),
        as_ok,
        tgs_ok,
        errors,
        elapsed_us,
        journal_dump,
        journal_events,
        journal_dropped,
    })
}

/// One worker: a fresh realm on its own simulated network, `iters` login
/// cycles, all metrics reported into `registry`. `thread_idx` derives the
/// per-worker seed so the fleet does not run in lockstep.
fn run_worker(
    cfg: &StatConfig,
    thread_idx: u64,
    iters: usize,
    users: usize,
    registry: &Arc<Registry>,
    journal: &Arc<Journal>,
) -> Result<(), ToolError> {
    let seed = cfg.seed ^ thread_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let mut boot = kdb_init(REALM, "bench-master-pw", START, seed)
        .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;
    for u in 0..users {
        register_user(&mut boot.db, &format!("user{u}"), "", &format!("pw-{u}"), START)
            .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;
    }
    let mut keygen = krb_crypto::KeyGenerator::new(StdRng::seed_from_u64(seed ^ 0x5EED));
    register_service(&mut boot.db, "rcmd", "bench", START, &mut keygen)
        .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;

    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), KDC_ADDR, 0, START,
    )
    .map_err(|_| ToolError::Krb(kerberos::ErrorCode::IntkErr))?;

    let clock_us = if cfg.sim_clock {
        lcg_clock_us(seed, 40, 400)
    } else {
        wall_clock_us()
    };
    {
        let mut master = dep.master.lock();
        master.set_telemetry(Arc::clone(registry), ClockUs::clone(&clock_us));
        master.set_journal(Arc::clone(journal));
    }

    let service = Principal::parse("rcmd.bench", REALM)?;
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..iters {
        // Advance realm time one second per cycle: authenticators get
        // fresh timestamps and ticket lifetimes still hold easily.
        dep.advance_time(1);
        let u: usize = rng.random_range(0..users);
        let mut ws = Workstation::new(
            WS_ADDR,
            REALM,
            dep.kdc_endpoints(),
            shared_clock(Arc::clone(&dep.clock_cell)),
        );
        // A fresh workstation per cycle means a fresh login counter, so
        // derive each cycle's trace seed from the cycle index.
        ws.enable_tracing(
            Arc::clone(journal),
            ClockUs::clone(&clock_us),
            seed.wrapping_add(i as u64),
        );
        ws.kinit(&mut router, &format!("user{u}"), &format!("pw-{u}"))?;
        ws.mk_request(&mut router, &service, 0, false)?;
    }
    Ok(())
}

fn per_sec(count: u64, elapsed_us: u64) -> f64 {
    (count as f64) * 1_000_000.0 / (elapsed_us.max(1) as f64)
}

fn latency_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.p50, s.p95, s.p99, s.max
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &StatConfig,
    iters: usize,
    users: usize,
    threads: usize,
    elapsed_us: u64,
    as_ok: u64,
    tgs_ok: u64,
    errors: u64,
    sched_hits: u64,
    sched_misses: u64,
    journal_events: u64,
    journal_dropped: u64,
    as_hist: &HistogramSummary,
    tgs_hist: &HistogramSummary,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kdc_load\",\n",
            "  \"iters\": {iters},\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"threads\": {threads},\n",
            "  \"clock\": \"{clock}\",\n",
            "  \"elapsed_us\": {elapsed},\n",
            "  \"as_ok\": {as_ok},\n",
            "  \"tgs_ok\": {tgs_ok},\n",
            "  \"errors\": {errors},\n",
            "  \"as_per_sec\": {asps:.2},\n",
            "  \"tgs_per_sec\": {tgsps:.2},\n",
            "  \"sched_cache\": {{\"hits\": {shits}, \"misses\": {smisses}}},\n",
            "  \"journal\": {{\"events\": {jevents}, \"dropped\": {jdropped}}},\n",
            "  \"latency_us\": {{\"as\": {aslat}, \"tgs\": {tgslat}}}\n",
            "}}\n",
        ),
        iters = iters,
        users = users,
        seed = cfg.seed,
        threads = threads,
        clock = if cfg.sim_clock { "sim" } else { "wall" },
        elapsed = elapsed_us,
        as_ok = as_ok,
        tgs_ok = tgs_ok,
        errors = errors,
        asps = per_sec(as_ok, elapsed_us),
        tgsps = per_sec(tgs_ok, elapsed_us),
        shits = sched_hits,
        smisses = sched_misses,
        jevents = journal_events,
        jdropped = journal_dropped,
        aslat = latency_json(as_hist),
        tgslat = latency_json(tgs_hist),
    )
}

/// Keys a well-formed `BENCH_kdc.json` must contain; `scripts/check.sh`
/// greps for these and the schema test below asserts them.
pub const REQUIRED_JSON_KEYS: &[&str] = &[
    "\"bench\"",
    "\"iters\"",
    "\"seed\"",
    "\"threads\"",
    "\"clock\"",
    "\"elapsed_us\"",
    "\"as_per_sec\"",
    "\"tgs_per_sec\"",
    "\"sched_cache\"",
    "\"hits\"",
    "\"misses\"",
    "\"journal\"",
    "\"events\"",
    "\"dropped\"",
    "\"latency_us\"",
    "\"p50\"",
    "\"p95\"",
    "\"p99\"",
    "\"max\"",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural JSON check: balanced braces outside strings,
    /// even quote count — enough to catch a mangled emitter without a
    /// JSON dependency.
    fn looks_like_json(s: &str) -> bool {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev_escape = false;
        let mut quotes = 0usize;
        for c in s.chars() {
            if in_str {
                if prev_escape {
                    prev_escape = false;
                } else if c == '\\' {
                    prev_escape = true;
                } else if c == '"' {
                    in_str = false;
                    quotes += 1;
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    quotes += 1;
                }
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str && quotes % 2 == 0
    }

    #[test]
    fn smoke_run_serves_every_cycle_and_emits_the_schema() {
        let report = run_load(&StatConfig::smoke()).unwrap();
        assert_eq!(report.as_ok, 25);
        assert_eq!(report.tgs_ok, 25);
        assert_eq!(report.errors, 0);
        for key in REQUIRED_JSON_KEYS {
            assert!(report.json.contains(key), "missing {key} in:\n{}", report.json);
        }
        assert!(looks_like_json(&report.json), "malformed JSON:\n{}", report.json);
    }

    #[test]
    fn same_seed_sim_runs_are_byte_identical() {
        // The determinism contract, end to end: with the simulated latency
        // clock, the JSON snapshot *and* the full registry export are a
        // pure function of the config.
        let cfg = StatConfig { iters: 40, users: 3, seed: 7, sim_clock: true, threads: 1 };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.json, b.json);
        assert_eq!(a.render, b.render);
        assert_eq!(a.journal_dump, b.journal_dump);
        // And the latency histograms actually saw samples.
        assert!(a.render.contains("kdc_as_latency_us_count 40"), "{}", a.render);
    }

    #[test]
    fn different_seeds_change_the_simulated_snapshot() {
        let a = run_load(&StatConfig { iters: 30, users: 3, seed: 1, sim_clock: true, threads: 1 })
            .unwrap();
        let b = run_load(&StatConfig { iters: 30, users: 3, seed: 2, sim_clock: true, threads: 1 })
            .unwrap();
        assert_ne!(a.render, b.render, "latency clock ignored the seed");
    }

    #[test]
    fn multi_thread_sim_runs_are_deterministic_and_serve_every_cycle() {
        // Each worker runs its own deployment on a thread-derived seed;
        // counters and histograms aggregate through the shared registry
        // with commutative updates, so the snapshot is reproducible even
        // though thread interleaving is not.
        let cfg = StatConfig { iters: 20, users: 3, seed: 9, sim_clock: true, threads: 4 };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.json, b.json);
        assert_eq!(a.render, b.render);
        // iters is per thread: 4 workers x 20 cycles.
        assert_eq!(a.as_ok, 80);
        assert_eq!(a.tgs_ok, 80);
        assert_eq!(a.errors, 0);
        assert!(a.json.contains("\"threads\": 4"), "{}", a.json);
    }

    #[test]
    fn multi_thread_journal_dump_is_byte_identical() {
        // Per-worker journals own their seq counters, and the combined
        // dump concatenates them in worker order — so even with 4 threads
        // racing, the dump is a pure function of the config.
        let cfg = StatConfig { iters: 15, users: 3, seed: 11, sim_clock: true, threads: 4 };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a.journal_dump, b.journal_dump);
        assert!(a.journal_events > 0);
        assert_eq!(a.journal_dropped, 0);
        for t in 0..4 {
            assert!(a.journal_dump.contains(&format!("# worker {t}\n")), "{}", a.journal_dump);
        }
        // Every cycle journals the full login chain at both hops.
        assert!(a.journal_dump.contains("kind=login_start"));
        assert!(a.journal_dump.contains("comp=kdc kind=as_ok"));
        assert!(a.journal_dump.contains("kind=ap_sent"));
    }

    #[test]
    fn sched_cache_counters_reach_the_snapshot() {
        // Every TGS exchange hits the krbtgt warm cache (not the LRU); the
        // per-service LRU sees one miss per distinct service key and hits
        // afterwards. With 25 cycles against a single service principal the
        // hit counter must dominate.
        let report = run_load(&StatConfig::smoke()).unwrap();
        let hits: u64 = report
            .json
            .lines()
            .find(|l| l.contains("\"sched_cache\""))
            .and_then(|l| l.split("\"hits\": ").nth(1))
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("sched_cache.hits in snapshot");
        assert!(hits > 0, "expected schedule-cache hits in:\n{}", report.json);
    }
}
