//! The on-disk ticket file (V4's `/tmp/tkt<uid>`).
//!
//! §6.1's user programs operate on this file: the log-in process writes
//! it, `klist` reads it, `kdestroy` destroys it — and destruction means
//! *overwriting* before unlinking, so ticket bytes do not linger in the
//! free blocks of a shared timesharing machine's disk.

use crate::ToolError;
use kerberos::{CredentialCache, ErrorCode};
use std::path::{Path, PathBuf};

/// A credential cache bound to a file path.
pub struct TicketFile {
    path: PathBuf,
}

impl TicketFile {
    /// Use the given path (callers pick `/tmp/tkt<uid>` or equivalent).
    pub fn at(path: impl AsRef<Path>) -> Self {
        TicketFile { path: path.as_ref().to_path_buf() }
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persist a cache (login, new service ticket).
    pub fn save(&self, cache: &CredentialCache) -> Result<(), ToolError> {
        std::fs::write(&self.path, cache.to_bytes())
            .map_err(|_| ToolError::Krb(ErrorCode::IntkErr))
    }

    /// Load the cache (`klist`, application clients).
    pub fn load(&self) -> Result<CredentialCache, ToolError> {
        let bytes =
            std::fs::read(&self.path).map_err(|_| ToolError::Krb(ErrorCode::IntkErr))?;
        CredentialCache::from_bytes(&bytes).map_err(ToolError::Krb)
    }

    /// Whether a ticket file exists.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// `kdestroy`: overwrite the file with zeros, then remove it.
    pub fn destroy(&self) -> Result<(), ToolError> {
        if let Ok(meta) = std::fs::metadata(&self.path) {
            let zeros = vec![0u8; meta.len() as usize];
            let _ = std::fs::write(&self.path, &zeros);
        }
        std::fs::remove_file(&self.path).map_err(|_| ToolError::Krb(ErrorCode::IntkErr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kerberos::{Credential, EncryptedTicket, Principal};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tktfile-{}-{name}", std::process::id()))
    }

    fn sample_cache() -> CredentialCache {
        let mut cache = CredentialCache::new();
        let owner = Principal::parse("bcn", "ATHENA.MIT.EDU").unwrap();
        cache.initialize(
            owner,
            Credential {
                service: Principal::tgs("ATHENA.MIT.EDU", "ATHENA.MIT.EDU"),
                issuing_realm: "ATHENA.MIT.EDU".into(),
                session_key: [0xAB; 8].into(),
                ticket: EncryptedTicket(vec![0xCD; 64]),
                life: 96,
                issued: 1000,
                kvno: 1,
            },
        );
        cache
    }

    #[test]
    fn save_load_round_trip() {
        let f = TicketFile::at(tmp("roundtrip"));
        let cache = sample_cache();
        f.save(&cache).unwrap();
        assert!(f.exists());
        assert_eq!(f.load().unwrap(), cache);
        f.destroy().unwrap();
    }

    #[test]
    fn destroy_overwrites_before_unlink() {
        // The ticket bytes must not be recoverable from the file content
        // at any point after destroy() begins; we verify the observable
        // half: the file is gone and a fresh read fails.
        let f = TicketFile::at(tmp("destroy"));
        f.save(&sample_cache()).unwrap();
        f.destroy().unwrap();
        assert!(!f.exists());
        assert!(f.load().is_err());
    }

    #[test]
    fn load_of_garbage_fails_cleanly() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a ticket file").unwrap();
        let f = TicketFile::at(&path);
        assert!(f.load().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let f = TicketFile::at(tmp("missing-never-created"));
        assert!(!f.exists());
        assert!(f.load().is_err());
        assert!(f.destroy().is_err());
    }
}
