//! # krb-kadm — the Kerberos administration service
//!
//! The "administration server" and "database administration programs" of
//! Figure 1 in Steiner, Neuman & Schiller (USENIX 1988): the KDBM server
//! (§5.1) with its access control list and audit log, and the client sides
//! of `kpasswd` and `kadmin` (§5.2, Figure 12).
//!
//! Two properties of the paper are enforced here and in `krb-kdc`:
//!
//! 1. tickets for the KDBM come only from the **authentication service**
//!    (the TGS refuses, via the `NO_TGS` attribute), so every admin
//!    operation requires a freshly typed password;
//! 2. writes happen only on the **master** — a KDBM cannot be attached to
//!    a slave KDC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{
    build_admin_request, build_kdbm_ticket_request, kadmin_add_op, kadmin_cpw_op, kpasswd_op,
    read_admin_reply, read_kdbm_ticket_reply,
};
pub use proto::{AdminOp, AdminRequest};
pub use server::{Acl, AuditRecord, KdbmServer, KdbmService};
