//! The KDBM server (paper §5, §5.1, Figure 11).
//!
//! "The administration server (or KDBM server) provides a read-write
//! network interface to the database. ... The server side, however, must
//! run on the machine housing the Kerberos database" — it shares the master
//! KDC's database and refuses to run against a slave.
//!
//! Authorization (§5.1): a request is permitted if the authenticated
//! requester *is* the target, or if the requester's principal name appears
//! in the access control list — by convention an `admin` instance. "All
//! requests to the KDBM program, whether permitted or denied, are logged."

use crate::proto::{AdminOp, AdminRequest};
use kerberos::{krb_rd_priv, krb_rd_req, ErrorCode, HostAddr, Message, Principal, ReplayCache};
use krb_kdc::{Clock, Kdc, KdcRole};
use krb_kdb::{Store, ATTR_NO_TGS};
use krb_crypto::DesKey;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// The access control list: principal names (with `admin` instances, by
/// convention) permitted to operate on other principals' entries.
#[derive(Clone, Debug, Default)]
pub struct Acl {
    entries: HashSet<String>,
}

impl Acl {
    /// Empty list: only self-service password changes are possible.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `name.instance@realm` to the list.
    pub fn add(&mut self, principal: &Principal) {
        self.entries.insert(principal.to_string());
    }

    /// Remove an entry; returns whether it was present.
    pub fn remove(&mut self, principal: &Principal) -> bool {
        self.entries.remove(&principal.to_string())
    }

    /// Whether the principal is listed.
    pub fn contains(&self, principal: &Principal) -> bool {
        self.entries.contains(&principal.to_string())
    }

    /// Serialize one entry per line (the ACL "file").
    pub fn to_file(&self) -> String {
        let mut lines: Vec<&str> = self.entries.iter().map(String::as_str).collect();
        lines.sort_unstable();
        let mut out = String::new();
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Parse the ACL file format.
    pub fn from_file(text: &str, default_realm: &str) -> Result<Self, ErrorCode> {
        let mut acl = Acl::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            acl.add(&Principal::parse(line, default_realm)?);
        }
        Ok(acl)
    }
}

/// One audit-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Server time of the request.
    pub time: u32,
    /// Authenticated requester.
    pub requester: String,
    /// Operation name.
    pub op: String,
    /// Target `name.instance` (`*.*` = self).
    pub target: String,
    /// Whether the request was permitted.
    pub permitted: bool,
}

/// The KDBM server.
pub struct KdbmServer<S: Store + Send> {
    kdc: Arc<Kdc<S>>,
    acl: Acl,
    clock: Clock,
    replay: ReplayCache,
    audit: Vec<AuditRecord>,
    realm: String,
}

impl<S: Store + Send> KdbmServer<S> {
    /// Attach the KDBM to the master KDC's database. Fails (with
    /// `KadmUnauth`) if the KDC is a slave: "the KDBM server may only run
    /// on the master Kerberos machine."
    pub fn new(kdc: Arc<Kdc<S>>, acl: Acl, clock: Clock) -> Result<Self, ErrorCode> {
        if kdc.role() != KdcRole::Master {
            return Err(ErrorCode::KadmUnauth);
        }
        let realm = kdc.realm().to_string();
        Ok(KdbmServer { kdc, acl, clock, replay: ReplayCache::new(), audit: Vec::new(), realm })
    }

    /// Register the KDBM's own service principal (`changepw.kerberos`) with
    /// the `NO_TGS` attribute, so only the AS — which demands the password —
    /// issues tickets for it (§5.1).
    pub fn register_service(kdc: &Arc<Kdc<S>>, key: &DesKey, now: u32) -> Result<(), ErrorCode> {
        kdc.with_db_mut(|db| -> Result<(), ErrorCode> {
            db.add_principal("changepw", "kerberos", key, u32::MAX, 12, now, "kdb_init.")
                .map_err(|_| ErrorCode::KdcGenErr)?;
            let mut e = db
                .get("changepw", "kerberos")
                .map_err(|_| ErrorCode::KdcGenErr)?
                .ok_or(ErrorCode::KdcGenErr)?;
            e.attributes |= ATTR_NO_TGS;
            db.update_entry(&e).map_err(|_| ErrorCode::KdcGenErr)?;
            Ok(())
        })
        .ok_or(ErrorCode::KadmUnauth)?
    }

    /// The audit log (most recent last).
    pub fn audit_log(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// Handle one admin datagram; the reply is a `KRB_ERROR`-shaped status
    /// (code `Ok` on success).
    pub fn handle(&mut self, request: &[u8], sender: HostAddr) -> Vec<u8> {
        match self.try_handle(request, sender) {
            Ok(()) => Message::error(ErrorCode::Ok, "ok"),
            Err(code) => Message::error(code, code.describe()),
        }
    }

    fn try_handle(&mut self, request: &[u8], sender: HostAddr) -> Result<(), ErrorCode> {
        let req = AdminRequest::decode(request)?;
        let now = (self.clock)();
        let kdbm = Principal::kdbm(&self.realm);
        let kdbm_key = {
            let snap = self.kdc.snapshot();
            match snap.db().get_with_key("changepw", "kerberos") {
                Ok(Some((_, k))) => k,
                _ => return Err(ErrorCode::RdApNoKey),
            }
        };
        let verified = krb_rd_req(&req.ap, &kdbm, &kdbm_key, sender, now, &mut self.replay)?;
        let requester = verified.client.clone();

        // The ticket must come from the AS: AS-issued KDBM tickets are the
        // only kind that exist because the TGS refuses `NO_TGS` services —
        // belt and braces, verify the ticket's lifetime is the KDBM's short
        // one (≤ 1 hour), the signature of an AS-issued admin ticket.
        if verified.ticket.life > 12 {
            self.log(now, &requester, "bad_ticket", "*", false);
            return Err(ErrorCode::KadmUnauth);
        }

        let op_bytes = krb_rd_priv(
            &kerberos::PrivMsg { enc_part: req.sealed_op.clone() },
            &verified.session_key,
            Some(sender),
            now,
        )?;
        let op = AdminOp::decode(&op_bytes)?;

        // Authorization (§5.1).
        let (tname, tinstance) = op.target();
        let is_self = tname == "*"
            || (tname == requester.name && tinstance == requester.instance);
        let permitted = is_self || self.acl.contains(&requester);
        self.log(now, &requester, op.op_name(), &format!("{tname}.{tinstance}"), permitted);
        if !permitted {
            return Err(ErrorCode::KadmUnauth);
        }

        let mod_by = requester.local_str();
        let result = self
            .kdc
            .with_db_mut(|db| match op {
                AdminOp::ChangeOwnPassword { new_key } => db.change_key(
                    &requester.name,
                    &requester.instance,
                    &DesKey::from_bytes(new_key),
                    now,
                    &mod_by,
                ),
                AdminOp::ChangePasswordOf { name, instance, new_key } => {
                    db.change_key(&name, &instance, &DesKey::from_bytes(new_key), now, &mod_by)
                }
                AdminOp::AddPrincipal { name, instance, key, expiration, max_life } => db
                    .add_principal(
                        &name,
                        &instance,
                        &DesKey::from_bytes(key),
                        expiration,
                        max_life,
                        now,
                        &mod_by,
                    ),
            })
            .ok_or(ErrorCode::KadmUnauth)?;
        result.map_err(|e| match e {
            krb_kdb::DbError::AlreadyExists(_) => ErrorCode::KadmBadReq,
            krb_kdb::DbError::NotFound(_) => ErrorCode::KdcPrUnknown,
            krb_kdb::DbError::BadName(_) => ErrorCode::KdcNameFormat,
            _ => ErrorCode::KdcGenErr,
        })
    }

    fn log(&mut self, time: u32, requester: &Principal, op: &str, target: &str, permitted: bool) {
        self.audit.push(AuditRecord {
            time,
            requester: requester.to_string(),
            op: op.to_string(),
            target: target.to_string(),
            permitted,
        });
    }
}

/// Bind a KDBM server to the network substrate.
pub struct KdbmService<S: Store + Send>(pub Arc<Mutex<KdbmServer<S>>>);

impl<S: Store + Send> krb_netsim::Service for KdbmService<S> {
    fn handle(&mut self, req: &krb_netsim::Packet) -> Option<Vec<u8>> {
        Some(self.0.lock().handle(&req.payload, req.src.addr.0))
    }
}
