//! The administration protocol messages (paper §5, Figure 12).
//!
//! An admin request is an `AP_REQ` for the KDBM service plus a *private*
//! message (§2.1: "Private messages are used, for example, by the Kerberos
//! server itself for sending passwords over the network") carrying the
//! operation — new keys never travel in the clear.

use kerberos::wire::{Reader, Writer};
use kerberos::{ApReq, EncryptedTicket, ErrorCode, KrbResult};

/// An administration operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdminOp {
    /// `kpasswd`: change the requester's own key.
    ChangeOwnPassword {
        /// The new key (derived from the new password on the client).
        new_key: [u8; 8],
    },
    /// `kadmin add_new_key`: register a principal.
    AddPrincipal {
        /// Primary name.
        name: String,
        /// Instance.
        instance: String,
        /// Initial key.
        key: [u8; 8],
        /// Expiration date.
        expiration: u32,
        /// Maximum ticket lifetime (5-minute units).
        max_life: u8,
    },
    /// `kadmin change_password`: change another principal's key.
    ChangePasswordOf {
        /// Target primary name.
        name: String,
        /// Target instance.
        instance: String,
        /// The new key.
        new_key: [u8; 8],
    },
}

impl AdminOp {
    /// Target of the operation as `name.instance` (`*` = the requester).
    pub fn target(&self) -> (String, String) {
        match self {
            AdminOp::ChangeOwnPassword { .. } => ("*".into(), "*".into()),
            AdminOp::AddPrincipal { name, instance, .. }
            | AdminOp::ChangePasswordOf { name, instance, .. } => (name.clone(), instance.clone()),
        }
    }

    /// Short operation name for the audit log.
    pub fn op_name(&self) -> &'static str {
        match self {
            AdminOp::ChangeOwnPassword { .. } => "change_own_password",
            AdminOp::AddPrincipal { .. } => "add_principal",
            AdminOp::ChangePasswordOf { .. } => "change_password_of",
        }
    }

    /// Serialize (goes inside a private message).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            AdminOp::ChangeOwnPassword { new_key } => {
                w.u8(1);
                w.block(new_key);
            }
            AdminOp::AddPrincipal { name, instance, key, expiration, max_life } => {
                w.u8(2);
                w.str(name);
                w.str(instance);
                w.block(key);
                w.u32(*expiration);
                w.u8(*max_life);
            }
            AdminOp::ChangePasswordOf { name, instance, new_key } => {
                w.u8(3);
                w.str(name);
                w.str(instance);
                w.block(new_key);
            }
        }
        w.finish()
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> KrbResult<Self> {
        let mut r = Reader::new(buf);
        let op = match r.u8()? {
            1 => AdminOp::ChangeOwnPassword { new_key: r.block()? },
            2 => AdminOp::AddPrincipal {
                name: r.str()?,
                instance: r.str()?,
                key: r.block()?,
                expiration: r.u32()?,
                max_life: r.u8()?,
            },
            3 => AdminOp::ChangePasswordOf {
                name: r.str()?,
                instance: r.str()?,
                new_key: r.block()?,
            },
            _ => return Err(ErrorCode::KadmBadReq),
        };
        r.expect_end()?;
        Ok(op)
    }
}

/// The full request envelope: `AP_REQ` + sealed operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdminRequest {
    /// Authentication to the KDBM service.
    pub ap: ApReq,
    /// [`AdminOp`] wrapped with `krb_mk_priv` in the session key.
    pub sealed_op: Vec<u8>,
}

impl AdminRequest {
    /// Serialize the envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.ap.realm);
        w.bytes(&self.ap.ticket.0);
        w.bytes(&self.ap.authenticator);
        w.u8(u8::from(self.ap.mutual));
        w.bytes(&self.sealed_op);
        w.finish()
    }

    /// Parse the envelope.
    pub fn decode(buf: &[u8]) -> KrbResult<Self> {
        let mut r = Reader::new(buf);
        let ap = ApReq {
            realm: r.str()?,
            ticket: EncryptedTicket(r.bytes()?),
            authenticator: r.bytes()?,
            mutual: r.u8()? != 0,
        };
        let sealed_op = r.bytes()?;
        r.expect_end()?;
        Ok(AdminRequest { ap, sealed_op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip() {
        let ops = [
            AdminOp::ChangeOwnPassword { new_key: [1; 8] },
            AdminOp::AddPrincipal {
                name: "newbie".into(),
                instance: "".into(),
                key: [2; 8],
                expiration: 999,
                max_life: 96,
            },
            AdminOp::ChangePasswordOf { name: "jis".into(), instance: "".into(), new_key: [3; 8] },
        ];
        for op in ops {
            assert_eq!(AdminOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(AdminOp::decode(&[9]).unwrap_err(), ErrorCode::KadmBadReq);
    }

    #[test]
    fn truncated_op_rejected() {
        let buf = AdminOp::ChangeOwnPassword { new_key: [1; 8] }.encode();
        assert!(AdminOp::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn envelope_round_trip() {
        let req = AdminRequest {
            ap: ApReq {
                realm: "ATHENA.MIT.EDU".into(),
                ticket: EncryptedTicket(vec![1; 40]),
                authenticator: vec![2; 24],
                mutual: false,
            },
            sealed_op: vec![3; 32],
        };
        assert_eq!(AdminRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn target_and_names() {
        assert_eq!(AdminOp::ChangeOwnPassword { new_key: [0; 8] }.target().0, "*");
        let add = AdminOp::AddPrincipal {
            name: "x".into(),
            instance: "y".into(),
            key: [0; 8],
            expiration: 0,
            max_life: 0,
        };
        assert_eq!(add.target(), ("x".into(), "y".into()));
        assert_eq!(add.op_name(), "add_principal");
    }
}
