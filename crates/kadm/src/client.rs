//! Client sides of the administration protocol: `kpasswd` (§5.2, "Users may
//! change their Kerberos passwords") and `kadmin` ("Administrators ... add
//! principals to the database, or change the passwords of existing
//! principals"). Both "fetch a ticket for the KDBM server" by password —
//! through the AS, never the TGS (Figure 12).

use crate::proto::{AdminOp, AdminRequest};
use kerberos::{
    build_as_req, krb_mk_priv, krb_mk_req, read_as_reply_with_password, Credential, ErrorCode,
    HostAddr, KrbResult, Message, Principal,
};
use krb_crypto::string_to_key;

/// Step 1: the AS request for a KDBM ticket. The KDBM's short lifetime
/// (12 units = 1 hour) marks AS-issued admin tickets.
pub fn build_kdbm_ticket_request(client: &Principal, now: u32) -> Vec<u8> {
    build_as_req(client, &Principal::kdbm(&client.realm), 12, now)
}

/// Step 2: interpret the AS reply using the password typed at the prompt
/// ("An administrator is required to enter the password ... when they
/// invoke the kadmin program"; `kpasswd` asks for the old password).
pub fn read_kdbm_ticket_reply(reply: &[u8], password: &str, request_time: u32) -> KrbResult<Credential> {
    read_as_reply_with_password(reply, password, request_time)
}

/// Step 3: wrap an [`AdminOp`] into the authenticated, sealed envelope.
pub fn build_admin_request(
    cred: &Credential,
    client: &Principal,
    addr: HostAddr,
    now: u32,
    op: &AdminOp,
) -> Vec<u8> {
    let ap = krb_mk_req(&cred.ticket, &cred.issuing_realm, &cred.key(), client, addr, now, 0, false);
    let sealed = krb_mk_priv(&op.encode(), &cred.key(), addr, now);
    AdminRequest { ap, sealed_op: sealed.enc_part }.encode()
}

/// Step 4: interpret the KDBM's status reply.
pub fn read_admin_reply(reply: &[u8]) -> KrbResult<()> {
    match Message::decode(reply)? {
        Message::Err(e) if e.code == ErrorCode::Ok => Ok(()),
        Message::Err(e) => Err(e.code),
        _ => Err(ErrorCode::KadmBadReq),
    }
}

/// The complete `kpasswd` operation payload: derive the new key from the
/// new password locally — the password itself never leaves the workstation,
/// and the key travels only inside a private message.
pub fn kpasswd_op(new_password: &str) -> AdminOp {
    AdminOp::ChangeOwnPassword { new_key: *string_to_key(new_password).as_bytes() }
}

/// The `kadmin add_new_key` operation payload.
pub fn kadmin_add_op(name: &str, instance: &str, password: &str, expiration: u32, max_life: u8) -> AdminOp {
    AdminOp::AddPrincipal {
        name: name.to_string(),
        instance: instance.to_string(),
        key: *string_to_key(password).as_bytes(),
        expiration,
        max_life,
    }
}

/// The `kadmin change_password` operation payload.
pub fn kadmin_cpw_op(name: &str, instance: &str, new_password: &str) -> AdminOp {
    AdminOp::ChangePasswordOf {
        name: name.to_string(),
        instance: instance.to_string(),
        new_key: *string_to_key(new_password).as_bytes(),
    }
}
