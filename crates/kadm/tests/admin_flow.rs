//! End-to-end administration protocol tests (paper §5, Figures 11–12;
//! experiment E10).

use kerberos::{build_as_req, build_tgs_req, read_as_reply_with_password, read_tgs_reply, ErrorCode, Principal};
use krb_crypto::string_to_key;
use krb_kadm::{
    build_admin_request, build_kdbm_ticket_request, kadmin_add_op, kadmin_cpw_op, kpasswd_op,
    read_admin_reply, read_kdbm_ticket_reply, Acl, KdbmServer,
};
use krb_kdb::{MemStore, PrincipalDb};
use krb_kdc::{fixed_clock, Kdc, KdcRole, RealmConfig};
use std::sync::Arc;

const REALM: &str = "ATHENA.MIT.EDU";
const NOW: u32 = 600_000_000;
const WS: [u8; 4] = [18, 72, 0, 5];

struct Rig {
    kdc: Arc<Kdc<MemStore>>,
    kdbm: KdbmServer<MemStore>,
}

fn rig() -> Rig {
    let mut db = PrincipalDb::create(MemStore::new(), string_to_key("master"), NOW).unwrap();
    let far = NOW * 3;
    db.add_principal("krbtgt", REALM, &string_to_key("tgs"), far, 96, NOW, "i.").unwrap();
    db.add_principal("bcn", "", &string_to_key("bcn-pw"), far, 96, NOW, "i.").unwrap();
    db.add_principal("jis", "", &string_to_key("jis-pw"), far, 96, NOW, "i.").unwrap();
    db.add_principal("steiner", "admin", &string_to_key("steiner-admin-pw"), far, 96, NOW, "i.").unwrap();
    let kdc = Arc::new(Kdc::new(
        db,
        RealmConfig::new(REALM),
        fixed_clock(NOW),
        KdcRole::Master,
        5,
    ));
    KdbmServer::register_service(&kdc, &string_to_key("kdbm-svc"), NOW).unwrap();
    let mut acl = Acl::new();
    acl.add(&Principal::parse("steiner.admin", REALM).unwrap());
    let kdbm = KdbmServer::new(Arc::clone(&kdc), acl, fixed_clock(NOW)).unwrap();
    Rig { kdc, kdbm }
}

fn kdbm_cred(rig: &Rig, who: &str, password: &str) -> kerberos::Credential {
    let client = Principal::parse(who, REALM).unwrap();
    let req = build_kdbm_ticket_request(&client, NOW);
    let reply = rig.kdc.handle(&req, WS);
    read_kdbm_ticket_reply(&reply, password, NOW).unwrap()
}

#[test]
fn user_changes_own_password() {
    let mut r = rig();
    let client = Principal::parse("bcn", REALM).unwrap();
    let cred = kdbm_cred(&r, "bcn", "bcn-pw");
    let req = build_admin_request(&cred, &client, WS, NOW + 1, &kpasswd_op("bcn-new-pw"));
    read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap();

    // Old password no longer works for login; new one does.
    let as_req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW + 2);
    let reply = r.kdc.handle(&as_req, WS);
    assert_eq!(
        read_as_reply_with_password(&reply, "bcn-pw", NOW + 2).unwrap_err(),
        ErrorCode::IntkBadPw
    );
    let as_req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW + 3);
    let reply = r.kdc.handle(&as_req, WS);
    assert!(read_as_reply_with_password(&reply, "bcn-new-pw", NOW + 3).is_ok());
}

#[test]
fn non_admin_cannot_change_others_password() {
    let mut r = rig();
    let client = Principal::parse("bcn", REALM).unwrap();
    let cred = kdbm_cred(&r, "bcn", "bcn-pw");
    let req = build_admin_request(&cred, &client, WS, NOW + 1, &kadmin_cpw_op("jis", "", "stolen"));
    assert_eq!(read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap_err(), ErrorCode::KadmUnauth);
    // The denial is logged (§5.1: permitted or denied, all logged).
    let log = r.kdbm.audit_log();
    assert!(log.iter().any(|a| !a.permitted && a.requester.starts_with("bcn")));
}

#[test]
fn admin_instance_on_acl_can_administer() {
    let mut r = rig();
    let admin = Principal::parse("steiner.admin", REALM).unwrap();
    let cred = kdbm_cred(&r, "steiner.admin", "steiner-admin-pw");

    // Add a brand-new principal.
    let req = build_admin_request(
        &cred, &admin, WS, NOW + 1,
        &kadmin_add_op("newbie", "", "newbie-pw", NOW * 2, 96),
    );
    read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap();

    // Change another user's password.
    let req = build_admin_request(&cred, &admin, WS, NOW + 2, &kadmin_cpw_op("jis", "", "jis-new"));
    read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap();

    // Both take effect.
    let newbie = Principal::parse("newbie", REALM).unwrap();
    let as_req = build_as_req(&newbie, &Principal::tgs(REALM, REALM), 96, NOW + 3);
    let reply = r.kdc.handle(&as_req, WS);
    assert!(read_as_reply_with_password(&reply, "newbie-pw", NOW + 3).is_ok());

    let log = r.kdbm.audit_log();
    assert_eq!(log.len(), 2);
    assert!(log.iter().all(|a| a.permitted));
}

#[test]
fn plain_instance_not_on_acl_even_if_admin_of_nothing() {
    // steiner (NULL instance) is NOT on the ACL — only steiner.admin is.
    // §5.1: "names with a NULL instance ... do not appear in the access
    // control list file; instead, an admin instance is used."
    let mut r = rig();
    r.kdc
        .with_db_mut(|db| {
            db.add_principal("steiner", "", &string_to_key("steiner-pw"), NOW * 3, 96, NOW, "i.")
                .unwrap();
        })
        .unwrap();
    let steiner = Principal::parse("steiner", REALM).unwrap();
    let cred = kdbm_cred(&r, "steiner", "steiner-pw");
    let req = build_admin_request(&cred, &steiner, WS, NOW + 1, &kadmin_cpw_op("jis", "", "x"));
    assert_eq!(read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap_err(), ErrorCode::KadmUnauth);
}

#[test]
fn tgs_issued_ticket_rejected_by_kdbm() {
    // A passerby at an unattended workstation has the TGT but not the
    // password. The TGS refuses to issue KDBM tickets, and even a
    // long-lived ticket smuggled through would be rejected by the KDBM's
    // lifetime check.
    let r = rig();
    let client = Principal::parse("bcn", REALM).unwrap();
    let tgt = {
        let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW);
        let reply = r.kdc.handle(&req, WS);
        read_as_reply_with_password(&reply, "bcn-pw", NOW).unwrap()
    };
    let kdbm_svc = Principal::kdbm(REALM);
    let tgs_req = build_tgs_req(&tgt, &client, WS, NOW + 1, &kdbm_svc, 12);
    let reply = r.kdc.handle(&tgs_req, WS);
    assert_eq!(
        read_tgs_reply(&reply, &tgt, NOW + 1).unwrap_err(),
        ErrorCode::KdcNoTgsForService
    );
}

#[test]
fn kdbm_refuses_to_run_on_slave() {
    let r = rig();
    let dump = r.kdc.dump_text().unwrap();
    let entries = krb_kdb::dump::parse(&dump).unwrap();
    let mut store = MemStore::new();
    krb_kdb::dump::install(&mut store, &entries).unwrap();
    let db = PrincipalDb::open(store, string_to_key("master")).unwrap();
    let slave = Arc::new(Kdc::new(
        db, RealmConfig::new(REALM), fixed_clock(NOW), KdcRole::Slave, 9,
    ));
    assert_eq!(
        KdbmServer::new(slave, Acl::new(), fixed_clock(NOW)).err(),
        Some(ErrorCode::KadmUnauth)
    );
}

#[test]
fn admin_request_replay_rejected() {
    let mut r = rig();
    let client = Principal::parse("bcn", REALM).unwrap();
    let cred = kdbm_cred(&r, "bcn", "bcn-pw");
    let req = build_admin_request(&cred, &client, WS, NOW + 1, &kpasswd_op("first"));
    read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap();
    assert_eq!(
        read_admin_reply(&r.kdbm.handle(&req, WS)).unwrap_err(),
        ErrorCode::RdApRepeat
    );
}

#[test]
fn acl_file_round_trip() {
    let mut acl = Acl::new();
    acl.add(&Principal::parse("steiner.admin", REALM).unwrap());
    acl.add(&Principal::parse("jis.admin", REALM).unwrap());
    let text = acl.to_file();
    let parsed = Acl::from_file(&text, REALM).unwrap();
    assert!(parsed.contains(&Principal::parse("steiner.admin", REALM).unwrap()));
    assert!(parsed.contains(&Principal::parse("jis.admin", REALM).unwrap()));
    assert!(!parsed.contains(&Principal::parse("bcn", REALM).unwrap()));

    // Comments and blanks are tolerated.
    let with_comments = format!("# admins\n\n{text}");
    assert!(Acl::from_file(&with_comments, REALM).is_ok());
}

#[test]
fn admin_protocol_over_the_network() {
    // Figure 11: "The client side of the program may be run on any machine
    // on the network. The server side, however, must run on the machine
    // housing the Kerberos database." Here both KDC and KDBM answer on
    // network endpoints; the kpasswd client speaks only datagrams.
    use krb_kadm::KdbmService;
    use krb_netsim::{ports, Endpoint, NetConfig, Router, SimNet};

    let r = rig();
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let master_host = [18, 72, 0, 10];
    let kdc_ep = Endpoint::new(master_host, ports::KDC);
    let kdbm_ep = Endpoint::new(master_host, ports::KADM);
    router.serve(kdc_ep, krb_kdc::KdcService(Arc::clone(&r.kdc)));
    router.serve(kdbm_ep, KdbmService(Arc::new(parking_lot::Mutex::new(r.kdbm))));

    let ws_ep = Endpoint::new(WS, 1021);
    let client = Principal::parse("bcn", REALM).unwrap();

    // kpasswd over the wire: AS ticket from the KDC endpoint...
    let req = krb_kadm::build_kdbm_ticket_request(&client, NOW);
    let reply = router.rpc(ws_ep, kdc_ep, &req).unwrap();
    let cred = krb_kadm::read_kdbm_ticket_reply(&reply, "bcn-pw", NOW).unwrap();
    // ...then the sealed admin request to the KDBM endpoint.
    let admin =
        krb_kadm::build_admin_request(&cred, &client, WS, NOW + 1, &krb_kadm::kpasswd_op("net-pw"));
    let reply = router.rpc(ws_ep, kdbm_ep, &admin).unwrap();
    krb_kadm::read_admin_reply(&reply).unwrap();

    // The change took effect on the shared master database.
    let as_req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW + 2);
    let reply = router.rpc(ws_ep, kdc_ep, &as_req).unwrap();
    assert!(read_as_reply_with_password(&reply, "net-pw", NOW + 2).is_ok());
}
