//! Property tests for the administration protocol codec and server
//! robustness: no admin datagram — however malformed — may panic the KDBM
//! or slip past authorization.

use krb_kadm::{AdminOp, AdminRequest};
use kerberos::{ApReq, EncryptedTicket};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = AdminOp> {
    prop_oneof![
        any::<[u8; 8]>().prop_map(|new_key| AdminOp::ChangeOwnPassword { new_key }),
        ("[a-z]{1,12}", "[a-z]{0,8}", any::<[u8; 8]>(), any::<u32>(), any::<u8>()).prop_map(
            |(name, instance, key, expiration, max_life)| AdminOp::AddPrincipal {
                name, instance, key, expiration, max_life,
            }
        ),
        ("[a-z]{1,12}", "[a-z]{0,8}", any::<[u8; 8]>()).prop_map(|(name, instance, new_key)| {
            AdminOp::ChangePasswordOf { name, instance, new_key }
        }),
    ]
}

proptest! {
    #[test]
    fn admin_op_codec_round_trip(op in arb_op()) {
        prop_assert_eq!(AdminOp::decode(&op.encode()).unwrap(), op);
    }

    #[test]
    fn admin_op_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = AdminOp::decode(&bytes);
    }

    #[test]
    fn envelope_round_trip(
        realm in "[A-Z]{1,10}",
        ticket in proptest::collection::vec(any::<u8>(), 0..120),
        auth in proptest::collection::vec(any::<u8>(), 0..80),
        mutual in any::<bool>(),
        sealed in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let req = AdminRequest {
            ap: ApReq { realm, ticket: EncryptedTicket(ticket), authenticator: auth, mutual },
            sealed_op: sealed,
        };
        prop_assert_eq!(AdminRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn envelope_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = AdminRequest::decode(&bytes);
    }
}
