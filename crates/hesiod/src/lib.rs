//! # krb-hesiod — the Hesiod nameserver substrate
//!
//! Paper §2.2: "Other user information, such as real name, phone number,
//! and so forth, is kept by another server, the Hesiod nameserver. This
//! way, sensitive information, namely passwords, can be handled by
//! Kerberos ... while the non-sensitive information kept by Hesiod is
//! dealt with differently; it can, for example, be sent unencrypted over
//! the network."
//!
//! The appendix uses Hesiod twice during login: "the user's home directory
//! is located by consulting the Hesiod naming service", and "the Hesiod
//! service is also used to construct an entry in the local password file."
//! This crate provides exactly those lookups: `passwd`-style user records
//! and `filsys`-style home-directory locations, served in the clear.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A `passwd`-style record: everything *except* the password.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserInfo {
    /// Login name.
    pub username: String,
    /// Numeric user id.
    pub uid: u32,
    /// Group memberships (first is the primary group).
    pub gids: Vec<u32>,
    /// Real name ("sent unencrypted" — deliberately non-sensitive).
    pub real_name: String,
    /// Phone number.
    pub phone: String,
    /// Login shell.
    pub shell: String,
}

/// A `filsys`-style record: where a user's home directory lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilsysInfo {
    /// Fileserver host address.
    pub server_addr: [u8; 4],
    /// Exported path on the fileserver.
    pub path: String,
}

/// The Hesiod database and query interface.
#[derive(Default)]
pub struct Hesiod {
    users: RwLock<HashMap<String, UserInfo>>,
    filsys: RwLock<HashMap<String, FilsysInfo>>,
}

/// Query errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HesiodError {
    /// No record under that name.
    NotFound,
    /// Malformed query string.
    BadQuery,
}

impl std::fmt::Display for HesiodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HesiodError::NotFound => write!(f, "hesiod: name not found"),
            HesiodError::BadQuery => write!(f, "hesiod: bad query"),
        }
    }
}

impl std::error::Error for HesiodError {}

impl Hesiod {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register or replace a user record.
    pub fn add_user(&self, info: UserInfo) {
        self.users.write().insert(info.username.clone(), info);
    }

    /// Register or replace a home-directory record.
    pub fn add_filsys(&self, username: &str, info: FilsysInfo) {
        self.filsys.write().insert(username.to_string(), info);
    }

    /// `hes_getpwnam`: the passwd-style lookup used to build the local
    /// password file entry at login.
    pub fn getpwnam(&self, username: &str) -> Result<UserInfo, HesiodError> {
        self.users.read().get(username).cloned().ok_or(HesiodError::NotFound)
    }

    /// `hes_getfilsys`: locate the user's home directory for the NFS mount.
    pub fn getfilsys(&self, username: &str) -> Result<FilsysInfo, HesiodError> {
        self.filsys.read().get(username).cloned().ok_or(HesiodError::NotFound)
    }

    /// Number of user records.
    pub fn user_count(&self) -> usize {
        self.users.read().len()
    }

    /// Serve the text query protocol: `passwd <name>` or `filsys <name>`.
    /// Responses are plain text — this data is public by design.
    pub fn query(&self, q: &str) -> Result<String, HesiodError> {
        let (kind, name) = q.split_once(' ').ok_or(HesiodError::BadQuery)?;
        match kind {
            "passwd" => {
                let u = self.getpwnam(name)?;
                let gids = u.gids.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                Ok(format!(
                    "{}:*:{}:{}:{},{}:{}",
                    u.username, u.uid, gids, u.real_name, u.phone, u.shell
                ))
            }
            "filsys" => {
                let f = self.getfilsys(name)?;
                Ok(format!(
                    "NFS {} {}.{}.{}.{}",
                    f.path, f.server_addr[0], f.server_addr[1], f.server_addr[2], f.server_addr[3]
                ))
            }
            _ => Err(HesiodError::BadQuery),
        }
    }
}

/// Serve a shared [`Hesiod`] on the network substrate.
pub struct HesiodService(pub Arc<Hesiod>);

impl krb_netsim::Service for HesiodService {
    fn handle(&mut self, req: &krb_netsim::Packet) -> Option<Vec<u8>> {
        let q = String::from_utf8_lossy(&req.payload);
        Some(match self.0.query(&q) {
            Ok(answer) => answer.into_bytes(),
            Err(e) => format!("ERR {e}").into_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hesiod {
        let h = Hesiod::new();
        h.add_user(UserInfo {
            username: "bcn".into(),
            uid: 8042,
            gids: vec![100, 200],
            real_name: "Clifford Neuman".into(),
            phone: "x3-1234".into(),
            shell: "/bin/csh".into(),
        });
        h.add_filsys("bcn", FilsysInfo { server_addr: [18, 72, 0, 30], path: "/u1/bcn".into() });
        h
    }

    #[test]
    fn getpwnam_and_getfilsys() {
        let h = sample();
        let u = h.getpwnam("bcn").unwrap();
        assert_eq!(u.uid, 8042);
        assert_eq!(u.gids, vec![100, 200]);
        let f = h.getfilsys("bcn").unwrap();
        assert_eq!(f.path, "/u1/bcn");
        assert_eq!(h.getpwnam("nobody").unwrap_err(), HesiodError::NotFound);
        assert_eq!(h.getfilsys("nobody").unwrap_err(), HesiodError::NotFound);
    }

    #[test]
    fn query_protocol_text_formats() {
        let h = sample();
        let pw = h.query("passwd bcn").unwrap();
        assert!(pw.starts_with("bcn:*:8042:100,200:"), "{pw}");
        assert!(pw.contains("Clifford Neuman"));
        let fs = h.query("filsys bcn").unwrap();
        assert_eq!(fs, "NFS /u1/bcn 18.72.0.30");
    }

    #[test]
    fn passwd_field_never_contains_a_password() {
        // The whole point of the Kerberos/Hesiod split: the password field
        // in Hesiod's passwd record is a placeholder.
        let h = sample();
        let pw = h.query("passwd bcn").unwrap();
        assert_eq!(pw.split(':').nth(1), Some("*"));
    }

    #[test]
    fn bad_queries_rejected() {
        let h = sample();
        assert_eq!(h.query("passwd").unwrap_err(), HesiodError::BadQuery);
        assert_eq!(h.query("uidmap bcn").unwrap_err(), HesiodError::BadQuery);
        assert_eq!(h.query("passwd ghost").unwrap_err(), HesiodError::NotFound);
    }

    #[test]
    fn network_service_answers() {
        use krb_netsim::{Endpoint, NetConfig, Router, SimNet};
        let mut router = Router::new(SimNet::new(NetConfig::default()));
        let h = Arc::new(sample());
        let ep = Endpoint::new([18, 72, 0, 9], krb_netsim::ports::HESIOD);
        router.serve(ep, HesiodService(Arc::clone(&h)));
        let me = Endpoint::new([18, 72, 0, 5], 1024);
        let reply = router.rpc(me, ep, b"filsys bcn").unwrap();
        assert_eq!(reply, b"NFS /u1/bcn 18.72.0.30");
        let err = router.rpc(me, ep, b"passwd ghost").unwrap();
        assert!(err.starts_with(b"ERR"));
    }
}
