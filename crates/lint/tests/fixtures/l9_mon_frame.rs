// L9 fixture (bad): a session key framed into a MonService reply —
// monitoring frames are cleartext on the wire. Expected: exactly one
// finding, L9 / session_key.
pub fn stat_reply(out: &mut Vec<u8>, session_key: &DesKey) {
    frame_bytes(out, session_key.to_bytes());
}
