// L9 fixture (bad): the secret takes two hops before reaching a format
// sink — adjacency heuristics (old L7) were blind to this.
// Expected: exactly one finding, L9 / aliased.
pub fn describe(key: &DesKey) -> String {
    let copied = key.clone();
    let aliased = copied;
    format!("session {:?}", aliased)
}
