// L8 fixture (good twin): snapshot under the lock, frame outside it.
// Expected: no findings.
pub fn push_db(dep: &Deployment) -> Vec<u8> {
    let text = dep.master.lock().dump_text();
    frame(&dep.master_key, text.as_bytes())
}
