// One live L8 finding (master_across_send), covered by the fixture
// allowlist. No lock-order or taint findings — the allow entries for
// those are deliberately stale.
pub fn push(dep: &Deployment) {
    let kdc = dep.master.lock();
    dep.router.send(kdc.port, b"update");
}
