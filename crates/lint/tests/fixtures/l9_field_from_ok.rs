// L9 fixture (good twin): the journal records the ciphertext length —
// derived data, not the secret. Expected: no findings.
pub fn journal_transfer(ctx: &Ctx, sched: &Scheduled, payload: &[u8]) {
    let sealed = seal_with(sched, payload);
    ctx.record_event(vec![("bytes", Field::from(sealed.len()))]);
}
