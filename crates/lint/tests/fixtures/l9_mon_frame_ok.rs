// L9 fixture (good twin): only the key's *length* reaches the frame —
// `.len()` launders the secret into a harmless scalar. Expected: no
// findings.
pub fn stat_reply(out: &mut Vec<u8>, session_key: &DesKey) {
    frame_u64(out, session_key.len() as u64);
}
