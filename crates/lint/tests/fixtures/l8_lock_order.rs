// L8 fixture (bad): nested acquisition against the declared lock order
// (master ranks before ledger, so ledger-then-master inverts it).
// Expected: exactly one finding, L8 / order_ledger_master.
pub fn audit(dep: &Deployment) {
    let ledger = dep.ledger.lock();
    let master = dep.master.lock();
    master.verify(&*ledger);
}
