// L8 fixture (bad): re-acquiring a lock whose guard is still live —
// self-deadlock. Expected: exactly one finding, L8 / order_master_master.
pub fn double_count(dep: &Deployment) -> u32 {
    let first = dep.master.lock();
    let second = dep.master.lock();
    first.count() + second.count()
}
