// L9 fixture (good twin): the same chain ends in a laundering accessor —
// a length is not key material. Expected: no findings.
pub fn describe(key: &DesKey) -> String {
    let copied = key.clone();
    format!("session of {} bytes", copied.len())
}
