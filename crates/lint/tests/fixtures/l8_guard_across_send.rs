// L8 fixture (bad): a binding guard held across a network send.
// Expected: exactly one finding, L8 / master_across_send.
pub fn propagate(dep: &Deployment) {
    let kdc = dep.master.lock();
    dep.router.send(kdc.port, b"update");
}
