// L8 fixture (good twin): the guard is scoped to the snapshot; the send
// happens on the owned copy. Expected: no findings.
pub fn propagate(dep: &Deployment) {
    let port = {
        let kdc = dep.master.lock();
        kdc.port
    };
    dep.router.send(port, b"update");
}
