// L8 fixture (bad): a temporary guard created inside the argument list of
// a blocking call — the lock is held for the entire transfer production.
// Expected: exactly one finding, L8 / master_across_kprop_build.
pub fn push_db(dep: &Deployment) -> Vec<u8> {
    kprop_build(dep.master.lock().db())
}
