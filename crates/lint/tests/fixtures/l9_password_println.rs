// L9 fixture (bad): the password reaches the log only as an inline
// format capture — the name never appears outside the string literal.
// Expected: exactly one finding, L9 / password.
pub fn greet(user: &str, password: &str) {
    println!("login {user} pw {password}");
}
