// L9 fixture (good twin): the password is consumed by the key derivation
// and only the user name is logged. Expected: no findings.
pub fn greet(user: &str, password: &str) {
    let key = string_to_key(password);
    register(user, key);
    println!("login {user} ok");
}
