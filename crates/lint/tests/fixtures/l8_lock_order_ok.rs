// L8 fixture (good twin): same two locks, acquired in the declared order
// (master before ledger). Expected: no findings.
pub fn audit(dep: &Deployment) {
    let master = dep.master.lock();
    let ledger = dep.ledger.lock();
    master.verify(&*ledger);
}
