// L9 fixture (bad): key material packed into a journal event field —
// journal dumps are plaintext. Expected: exactly one finding, L9 / DesKey.
pub fn journal_key(ctx: &Ctx, key: &DesKey) {
    ctx.record_event(vec![("key", Field::from(DesKey::clone(key)))]);
}
