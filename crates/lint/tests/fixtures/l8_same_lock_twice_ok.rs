// L8 fixture (good twin): the first guard is explicitly dropped before
// the lock is taken again. Expected: no findings.
pub fn sequential_count(dep: &Deployment) -> u32 {
    let first = dep.master.lock();
    let a = first.count();
    drop(first);
    let second = dep.master.lock();
    a + second.count()
}
