//! `krb-lint`: Kerberos-invariant static analysis for this workspace.
//!
//! Kerberos' security argument rests on invariants the type system alone
//! does not enforce, so this crate checks them mechanically on every test
//! run (see `tests/lint.rs` at the workspace root):
//!
//! - **L1 secret-hygiene**: a struct that carries raw key material
//!   (`[u8; 8]` session keys and friends) must not derive `Debug` unless
//!   the field is routed through a redacting wrapper (`DesKey`,
//!   `SecretKey`). Paper §2: the session key is the only secret shared
//!   between client and server — it must never reach logs.
//! - **L2 constant-time comparison**: key and checksum byte arrays must be
//!   compared with `crypto::ct_eq`, never `==`/`!=`, so a byte-by-byte
//!   early exit cannot become a timing oracle for forging authenticators.
//! - **L3 panic-free server paths**: request-handling code in the KDC,
//!   admin server, propagation daemon, and application servers must map
//!   malformed input to protocol errors (paper §6 error replies), not
//!   `unwrap`/`expect`/`panic!` — a remote peer must not be able to crash
//!   the authentication service.
//! - **L4 crate hygiene**: every crate forbids `unsafe_code` and carries
//!   crate-level docs.
//! - **L5 one counting substrate**: raw atomic counters (`AtomicU64`,
//!   `AtomicUsize`, `AtomicI64`) outside `crates/telemetry` are findings —
//!   ad-hoc counters dodge the registry (no export, no determinism
//!   contract). Use `krb_telemetry::Counter`/`Gauge` instead; genuinely
//!   non-metric atomics (e.g. a simulated-time cell) go in `lint.allow`
//!   with a justification.
//! - **L6 one schedule per key**: `FastDes::new`/`Des::new` outside
//!   `crates/crypto` are findings — constructing a raw cipher rebuilds the
//!   DES key schedule at the call site, dodging the `Scheduled` cache
//!   (DESIGN.md §10). Build a `Scheduled` once and pass it through the
//!   `*_with` API family instead. (Benches measuring the schedule cost
//!   itself are allowlisted.)
//! - **L7 (retired)**: the old same-line "secret type next to
//!   `Field::from`" adjacency check. Superseded by L9, which tracks the
//!   actual flow instead of guessing from proximity; the id stays
//!   reserved so historical allowlist entries and docs remain readable.
//! - **L8 lock discipline**: a `MutexGuard`/`RwLockGuard` (bound from an
//!   empty-argument `.lock()`/`.read()`/`.write()`) must not be live
//!   across a blocking or I/O-shaped call (network send, RPC, kprop
//!   transfer, journal emission), whether held in a binding or created
//!   as a temporary inside the blocking call's own arguments; and nested
//!   guard acquisitions must follow the single declared lock order
//!   ([`lock::LOCK_ORDER`]). See [`lock`]. These are the hazards the
//!   ROADMAP-1 concurrent-KDC refactor will introduce; the rule lands
//!   first so the refactor inherits a fence, not a cleanup.
//! - **L9 secret-taint dataflow**: intraprocedural taint from secret
//!   sources (`DesKey`/`SecretKey`/`Scheduled` values, key-producing
//!   calls, password-named bindings) through `let`/assignment/method
//!   chains into plaintext sinks (`format!`-family macros, `Debug`
//!   formatting, the journal's `Field::from`) — including
//!   `format!("{key}")` inline captures that never mention the name
//!   outside the string literal. See [`taint`]. Paper §2: the session
//!   key is the only secret shared between client and server — it must
//!   never reach logs.
//!
//! Findings are suppressed only via the `lint.allow` file at the
//! workspace root, and unused allowlist entries are themselves errors, so
//! the allowlist can only shrink (burndown).
//!
//! The scanner is dependency-free: a hand-rolled lexer ([`lexer`]) strips
//! comments and string literals (retaining inline format captures), the
//! token rules (L1–L6) pattern-match the stream, and the scope rules
//! (L8/L9) run on a lightweight brace-tree IR ([`scope`]) built over it.
//! `#[cfg(test)]` items are excluded — tests may freely unwrap, print,
//! and hold locks however they like.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lock;
pub mod scope;
pub mod taint;

use lexer::{lex, Kind, Token};
use scope::ScopeModel;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Files whose non-test code handles remote requests (L3 scope).
const SERVER_PATH_FILES: &[&str] = &[
    "crates/kdc/src/server.rs",
    "crates/kdc/src/service.rs",
    "crates/kadm/src/server.rs",
    "crates/kprop/src/lib.rs",
    "crates/kprop/src/net.rs",
    "crates/nfs/src/server.rs",
    "crates/apps/src/netproto.rs",
];

/// Identifiers that denote key/checksum material for the L2 rule.
const L2_SECRET_IDENTS: &[&str] = &[
    "cksum",
    "checksum",
    "auth_hash",
    "digest",
    "session_key",
];

/// Field-name fragments that mark a struct field as key material (L1).
const L1_SECRET_FRAGMENTS: &[&str] = &["key", "secret", "password"];

/// Types that already redact themselves; fields of these types are exempt
/// from L1 even when the field name says "key".
const REDACTED_TYPES: &[&str] = &["DesKey", "SecretKey"];

/// Atomic integer types whose raw use outside `crates/telemetry` is an L5
/// finding — counters belong to the telemetry registry.
const L5_ATOMIC_TYPES: &[&str] = &["AtomicU64", "AtomicUsize", "AtomicI64"];

/// Raw cipher constructors whose use outside `crates/crypto` is an L6
/// finding — they rebuild the DES key schedule per call; hot paths must
/// hold a `Scheduled` instead.
const L6_CIPHER_TYPES: &[&str] = &["FastDes", "Des"];

/// Panic-family method calls and macros forbidden in server paths (L3).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `"L1"`..`"L9"` (`"L7"` is retired and never emitted).
    pub rule: &'static str,
    /// Path relative to the workspace root, with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The identifier the rule fired on; the allowlist keys on this.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} [{}] {}",
            self.rule, self.file, self.line, self.key, self.message
        )
    }
}

/// One `lint.allow` entry: `rule path key` (whitespace-separated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// The finding key the entry suppresses.
    pub key: String,
    /// Line in `lint.allow` (for diagnostics).
    pub line: u32,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.rule, self.file, self.key)
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist — these fail the build.
    pub findings: Vec<Finding>,
    /// Violations suppressed by a `lint.allow` entry.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched nothing — also failures: the
    /// allowlist must shrink as violations are fixed, never go stale.
    pub stale_allow: Vec<AllowEntry>,
    /// Total allowlist entries parsed (the burndown ceiling check).
    pub allow_count: usize,
    /// Number of source files scanned (a sanity signal: a run that
    /// scanned zero files proves nothing).
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean: no live findings, no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allow.is_empty()
    }

    /// Per-rule `(id, live, allowed)` counts over every active rule id,
    /// zeros included, so consumers see a stable schema.
    pub fn counts(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let live = self.findings.iter().filter(|f| f.rule == r.id).count();
                let allowed = self.allowed.iter().filter(|f| f.rule == r.id).count();
                (r.id, live, allowed)
            })
            .collect()
    }

    /// Machine-readable report (hand-rolled JSON; the workspace is
    /// dependency-free by design). Schema: see `--explain json` /
    /// DESIGN.md §13.
    pub fn render_json(&self) -> String {
        fn finding_json(f: &Finding) -> String {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"key\":\"{}\",\"message\":\"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.key),
                json_escape(&f.message)
            )
        }
        let rules: Vec<String> = self
            .counts()
            .iter()
            .map(|(id, live, allowed)| {
                format!("{{\"id\":\"{id}\",\"live\":{live},\"allowed\":{allowed}}}")
            })
            .collect();
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let allowed: Vec<String> = self.allowed.iter().map(finding_json).collect();
        let stale: Vec<String> = self
            .stale_allow
            .iter()
            .map(|e| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"key\":\"{}\"}}",
                    json_escape(&e.rule),
                    json_escape(&e.file),
                    json_escape(&e.key)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"krb-lint/v2\",\"files_scanned\":{},\"clean\":{},\
             \"allow_count\":{},\"rules\":[{}],\"findings\":[{}],\"allowed\":[{}],\
             \"stale_allow\":[{}]}}",
            self.files_scanned,
            self.is_clean(),
            self.allow_count,
            rules.join(","),
            findings.join(","),
            allowed.join(","),
            stale.join(",")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One rule's documentation, served by `krb-lint --explain L<k>`.
pub struct Rule {
    /// Rule id (`"L1"`..).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// What it checks, why the invariant matters, and how to fix a hit.
    pub detail: &'static str,
}

/// Every active rule, in id order. L7 is retired (superseded by L9) and
/// intentionally absent.
pub const RULES: &[Rule] = &[
    Rule {
        id: "L1",
        title: "secret-hygiene: no derive(Debug) on raw key fields",
        detail: "A struct that derives Debug while carrying raw key bytes \
                 ([u8; 8], Vec<u8>) in a secret-named field will print key \
                 material in logs and panics. Wrap the field in \
                 crypto::SecretKey / DesKey (both redact their Debug) or drop \
                 the derive. Paper §2: the session key must never leave the \
                 protocol.",
    },
    Rule {
        id: "L2",
        title: "constant-time comparison of key/checksum material",
        detail: "Comparing checksums or session keys with == / != short- \
                 circuits on the first differing byte, turning verification \
                 into a timing oracle for forging authenticators. Use \
                 crypto::ct_eq, which always walks the full width.",
    },
    Rule {
        id: "L3",
        title: "panic-free server request paths",
        detail: "unwrap/expect/panic!/assert! in KDC, kadmind, kpropd or \
                 application-server request handling lets a malformed packet \
                 crash the authentication service (paper §6 prescribes error \
                 replies). Map errors to typed protocol errors instead. \
                 Applies to the files listed in SERVER_PATH_FILES.",
    },
    Rule {
        id: "L4",
        title: "crate hygiene: forbid(unsafe_code) + crate docs",
        detail: "Every crate root must carry #![forbid(unsafe_code)] and \
                 crate-level //! documentation. The workspace's assurance \
                 argument is 'no unsafe anywhere'; one crate opting out \
                 silently would void it.",
    },
    Rule {
        id: "L5",
        title: "one counting substrate: no raw atomics outside telemetry",
        detail: "Raw AtomicU64/AtomicUsize/AtomicI64 counters outside \
                 crates/telemetry dodge the metrics registry: no export, no \
                 determinism contract. Use krb_telemetry::Counter/Gauge. \
                 Genuinely non-metric atomics (the simulated clock) carry a \
                 justified lint.allow entry.",
    },
    Rule {
        id: "L6",
        title: "one schedule per key: no raw cipher constructors",
        detail: "FastDes::new / Des::new outside crates/crypto rebuilds the \
                 DES key schedule at the call site, dodging the Scheduled \
                 cache (DESIGN.md §10). Build a Scheduled once and use the \
                 *_with API family.",
    },
    Rule {
        id: "L8",
        title: "lock discipline: no guards across blocking calls; ordered nesting",
        detail: "A lock guard (from .lock()/.read()/.write() with no \
                 arguments) must not be live across a blocking or I/O-shaped \
                 call — send/rpc/rpc_traced, kprop transfer production \
                 (dump, kprop_build, tcp_kprop_send), journal emission \
                 (record, publish), or router pumping. That includes a \
                 temporary guard created inside the blocking call's argument \
                 list: dump(master.lock().db()) holds the KDC master lock for \
                 the whole database dump, serializing every authentication \
                 request behind replication (the paper runs propagation on \
                 its own cadence precisely to avoid this). Fix by \
                 snapshotting under the lock, dropping the guard (drop(g) is \
                 recognized), then doing the slow work on the owned copy. \
                 Nested acquisitions must follow LOCK_ORDER in \
                 crates/lint/src/lock.rs: inner rank strictly greater than \
                 outer; same lock twice is self-deadlock; locks absent from \
                 the order are flagged until declared deliberately.",
    },
    Rule {
        id: "L9",
        title: "secret-taint dataflow: key material must not reach sinks",
        detail: "Intraprocedural two-point taint per function. Sources: \
                 parameters/bindings typed DesKey/SecretKey/Scheduled, calls \
                 to string_to_key/get_with_key/random_key, and names that are \
                 secret by convention (session_key, master_key, *password*). \
                 Taint flows through let-chains, assignments and method calls \
                 (key.clone()); .len()/.is_empty() launder it, and a free \
                 call's result (seal_with(..) ciphertext) is clean by design. \
                 Sinks: format!/println!/write!/panic!-family macros (their \
                 output is plaintext logs), Debug formatting via {:?} or \
                 inline captures like format!(\"{key:?}\") — the lexer keeps \
                 capture names precisely for this — and the journal's \
                 Field::from. Supersedes L7's same-line adjacency heuristic.",
    },
];

/// Look up the `--explain` text for a rule id (case-insensitive).
pub fn explain(rule: &str) -> Option<&'static Rule> {
    let want = rule.to_ascii_uppercase();
    RULES.iter().find(|r| r.id == want)
}

/// Run every rule over the workspace rooted at `root` and apply the
/// `lint.allow` allowlist found there (missing file = empty allowlist).
pub fn run(root: &Path) -> std::io::Result<Report> {
    // A typo'd root would otherwise scan zero files and report a clean
    // tree — fail loudly instead of green-lighting nothing.
    if !root.join("Cargo.toml").is_file() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut raw = Vec::new();
    let mut files_scanned = 0usize;
    for file in source_files(root)? {
        let rel = rel_path(root, &file);
        let src = fs::read_to_string(&file)?;
        raw.extend(scan_file(&rel, &src));
        files_scanned += 1;
    }
    raw.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.key).cmp(&(b.rule, &b.file, b.line, &b.key))
    });

    let allow = parse_allow(root)?;
    let mut report = Report {
        allow_count: allow.len(),
        files_scanned,
        ..Report::default()
    };
    let mut used = vec![false; allow.len()];
    for finding in raw {
        let hit = allow.iter().position(|a| {
            a.rule == finding.rule && a.file == finding.file && a.key == finding.key
        });
        match hit {
            Some(idx) => {
                used[idx] = true;
                report.allowed.push(finding);
            }
            None => report.findings.push(finding),
        }
    }
    for (idx, entry) in allow.into_iter().enumerate() {
        if !used[idx] {
            report.stale_allow.push(entry);
        }
    }
    Ok(report)
}

/// Lint one file's source text. `rel` is the workspace-relative path with
/// `/` separators; it selects which rules apply.
pub fn scan_file(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();

    // L4 inspects the raw text (doc comments are stripped by the lexer)
    // and only applies to crate roots.
    if rel.ends_with("src/lib.rs") {
        findings.extend(check_l4(rel, src));
    }

    // The analyzer does not police itself for L1–L3: its own rule tables
    // spell out the forbidden patterns and would self-flag.
    if rel.starts_with("crates/lint/") {
        return findings;
    }

    let tokens = strip_cfg_test(lex(src));
    findings.extend(check_l1(rel, &tokens));
    if !rel.starts_with("crates/crypto/") {
        findings.extend(check_l2(rel, &tokens));
    }
    if SERVER_PATH_FILES.contains(&rel) {
        findings.extend(check_l3(rel, &tokens));
    }
    if !rel.starts_with("crates/telemetry/") {
        findings.extend(check_l5(rel, &tokens));
    }
    if !rel.starts_with("crates/crypto/") {
        findings.extend(check_l6(rel, &tokens));
    }
    // Scope-aware rules share one brace-tree model. The telemetry crate is
    // exempt from both: it *implements* the journal/metrics substrate the
    // blocking-call and sink tables name (record/publish/Field are its own
    // vocabulary, not calls out of it).
    if !rel.starts_with("crates/telemetry/") {
        let model = ScopeModel::build(&tokens);
        findings.extend(lock::check_l8(rel, &tokens, &model));
        findings.extend(taint::check_l9(rel, &tokens, &model));
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Every `.rs` file under `crates/*/src` and the root `src/`, sorted.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------------------
// cfg(test) exclusion
// ---------------------------------------------------------------------------

/// Drop every item annotated `#[cfg(test)]` (most importantly whole
/// `mod tests { ... }` blocks) from the token stream, so L1–L3 only see
/// production code.
pub fn strip_cfg_test(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip this attribute, any stacked attributes after it, and
            // the item they decorate.
            i = skip_attr(&tokens, i);
            while i < tokens.len() && tokens[i].text == "#" {
                i = skip_attr(&tokens, i);
            }
            i = skip_item(&tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Does `# [ cfg ( test ) ]` start at `i`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + pat.len()
        && pat
            .iter()
            .zip(&tokens[i..])
            .all(|(want, tok)| tok.text == *want)
}

/// `i` points at `#`; return the index just past the attribute's `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    // Inner attribute `#![...]`.
    if j < tokens.len() && tokens[j].text == "!" {
        j += 1;
    }
    if j >= tokens.len() || tokens[j].text != "[" {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip one item starting at `i`: either up to and including a `;` seen
/// before any brace, or a balanced `{ ... }` block.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            ";" if depth == 0 => return j + 1,
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// L1: derive(Debug) on key-bearing structs
// ---------------------------------------------------------------------------

fn check_l1(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        // Gather the attribute stack in front of an item.
        let mut derives_debug = false;
        let mut j = i;
        while j < tokens.len() && tokens[j].text == "#" {
            let end = skip_attr(tokens, j);
            if attr_is_derive_debug(&tokens[j..end]) {
                derives_debug = true;
            }
            j = end;
        }
        if !derives_debug {
            i = j.max(i + 1);
            continue;
        }
        // Expect (pub)? struct Name ... `{`.
        let mut k = j;
        while k < tokens.len()
            && matches!(tokens[k].text.as_str(), "pub" | "(" | ")" | "crate" | "super")
        {
            k += 1;
        }
        if k >= tokens.len() || tokens[k].text != "struct" {
            i = j.max(i + 1);
            continue;
        }
        let struct_name = tokens.get(k + 1).map(|t| t.text.clone()).unwrap_or_default();
        // Skip generics / where clause up to the body (or `;` for unit /
        // tuple structs, which have no named fields to check).
        let mut b = k + 2;
        while b < tokens.len() && tokens[b].text != "{" && tokens[b].text != ";" {
            b += 1;
        }
        if b >= tokens.len() || tokens[b].text == ";" {
            i = b;
            continue;
        }
        let body_end = skip_item(tokens, b);
        findings.extend(check_l1_fields(
            rel,
            &struct_name,
            &tokens[b + 1..body_end.saturating_sub(1)],
        ));
        i = body_end;
    }
    findings
}

fn attr_is_derive_debug(attr: &[Token]) -> bool {
    attr.iter().any(|t| t.text == "derive") && attr.iter().any(|t| t.text == "Debug")
}

/// Walk named fields of a struct body; flag secret-named raw-byte fields.
fn check_l1_fields(rel: &str, struct_name: &str, body: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0;
    let n = body.len();
    while i < n {
        // Skip field attributes and visibility.
        while i < n && body[i].text == "#" {
            i = skip_attr(body, i);
        }
        while i < n
            && matches!(body[i].text.as_str(), "pub" | "(" | ")" | "crate" | "super")
        {
            i += 1;
        }
        if i >= n {
            break;
        }
        // Expect `name :`.
        if body[i].kind != Kind::Ident || i + 1 >= n || body[i + 1].text != ":" {
            i += 1;
            continue;
        }
        let field = &body[i];
        // The type runs until a `,` at nesting depth zero.
        let mut depth = 0i32;
        let mut j = i + 2;
        let ty_start = j;
        while j < n {
            match body[j].text.as_str() {
                "[" | "(" | "{" | "<" => depth += 1,
                "]" | ")" | "}" | ">" => depth -= 1,
                "," if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let ty = &body[ty_start..j];
        if field_name_is_secret(&field.text)
            && type_is_raw_bytes(ty)
            && !type_is_redacted(ty)
        {
            findings.push(Finding {
                rule: "L1",
                file: rel.to_string(),
                line: field.line,
                key: field.text.clone(),
                message: format!(
                    "struct {struct_name} derives Debug but field `{}` holds raw key \
                     material; wrap it in crypto::SecretKey (redacting Debug) or drop \
                     the derive",
                    field.text
                ),
            });
        }
        i = j + 1;
    }
    findings
}

fn field_name_is_secret(name: &str) -> bool {
    L1_SECRET_FRAGMENTS.iter().any(|frag| name.contains(frag))
}

/// `[u8; N]`, `Vec<u8>`, `&[u8]`, `Box<[u8]>` — byte *containers*. A bare
/// `u8` scalar (e.g. a `key_version` counter) is not key material.
fn type_is_raw_bytes(ty: &[Token]) -> bool {
    ty.iter().any(|t| t.text == "u8")
        && ty.iter().any(|t| t.text == "[" || t.text == "Vec")
}

fn type_is_redacted(ty: &[Token]) -> bool {
    ty.iter().any(|t| REDACTED_TYPES.contains(&t.text.as_str()))
}

// ---------------------------------------------------------------------------
// L2: non-constant-time comparison of key/checksum material
// ---------------------------------------------------------------------------

fn check_l2(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != Kind::CompareOp {
            continue;
        }
        // Look a few tokens to either side for a secret identifier; that
        // window covers `a.cksum == b`, `expect != msg.cksum`,
        // `cksum(x) == y`, without reaching into unrelated statements.
        let lo = i.saturating_sub(4);
        let hi = (i + 5).min(tokens.len());
        let secret = tokens[lo..hi].iter().find(|t| {
            t.kind == Kind::Ident && L2_SECRET_IDENTS.contains(&t.text.as_str())
        });
        if let Some(s) = secret {
            findings.push(Finding {
                rule: "L2",
                file: rel.to_string(),
                line: tok.line,
                key: s.text.clone(),
                message: format!(
                    "`{}` compares `{}` material non-constant-time; use \
                     crypto::ct_eq so verification cannot leak a timing oracle",
                    tok.text, s.text
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L3: panics in server request paths
// ---------------------------------------------------------------------------

fn check_l3(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != Kind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        let is_method =
            PANIC_METHODS.contains(&name) && prev == Some(".") && next == Some("(");
        let is_macro = PANIC_MACROS.contains(&name) && next == Some("!");
        if is_method || is_macro {
            findings.push(Finding {
                rule: "L3",
                file: rel.to_string(),
                line: tok.line,
                key: name.to_string(),
                message: format!(
                    "`{name}` in a server request path can crash the daemon on \
                     malformed input; return a typed protocol error instead"
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L5: raw atomic counters outside the telemetry substrate
// ---------------------------------------------------------------------------

fn check_l5(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind == Kind::Ident && L5_ATOMIC_TYPES.contains(&tok.text.as_str()) {
            findings.push(Finding {
                rule: "L5",
                file: rel.to_string(),
                line: tok.line,
                key: tok.text.clone(),
                message: format!(
                    "raw `{}` outside crates/telemetry bypasses the metrics \
                     registry; use krb_telemetry::Counter/Gauge so the value is \
                     exported and covered by the determinism contract",
                    tok.text
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L6: raw cipher construction outside the crypto crate
// ---------------------------------------------------------------------------

fn check_l6(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != Kind::Ident || !L6_CIPHER_TYPES.contains(&tok.text.as_str()) {
            continue;
        }
        // `Des :: new` / `FastDes :: new` (the lexer splits `::`).
        let is_ctor = tokens.get(i + 1).is_some_and(|t| t.text == ":")
            && tokens.get(i + 2).is_some_and(|t| t.text == ":")
            && tokens.get(i + 3).is_some_and(|t| t.text == "new");
        if is_ctor {
            findings.push(Finding {
                rule: "L6",
                file: rel.to_string(),
                line: tok.line,
                key: format!("{}::new", tok.text),
                message: format!(
                    "`{}::new` outside crates/crypto rebuilds the DES key \
                     schedule at the call site; build a `Scheduled` once and \
                     use the seal_with/unseal_with API family",
                    tok.text
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L4: crate hygiene (raw-text checks on crate roots)
// ---------------------------------------------------------------------------

fn check_l4(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let has_forbid = src
        .lines()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has_forbid {
        findings.push(Finding {
            rule: "L4",
            file: rel.to_string(),
            line: 1,
            key: "forbid_unsafe".to_string(),
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    let has_docs = src.lines().any(|l| l.trim_start().starts_with("//!"));
    if !has_docs {
        findings.push(Finding {
            rule: "L4",
            file: rel.to_string(),
            line: 1,
            key: "crate_docs".to_string(),
            message: "crate root is missing crate-level `//!` documentation".to_string(),
        });
    }
    findings
}

// ---------------------------------------------------------------------------
// lint.allow
// ---------------------------------------------------------------------------

/// Parse `lint.allow` at the workspace root. Format: one entry per line,
/// `RULE path key`; `#` starts a comment; blank lines ignored.
fn parse_allow(root: &Path) -> std::io::Result<Vec<AllowEntry>> {
    let path = root.join("lint.allow");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "lint.allow:{}: expected `RULE path key`, got `{line}`",
                    lineno + 1
                ),
            ));
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            key: parts[2].to_string(),
            line: (lineno + 1) as u32,
        });
    }
    Ok(entries)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(findings: &[Finding]) -> Vec<(&'static str, String)> {
        findings.iter().map(|f| (f.rule, f.key.clone())).collect()
    }

    #[test]
    fn l1_flags_raw_secret_field_under_derive_debug() {
        let src = r#"
            #[derive(Clone, PartialEq, Eq, Debug)]
            pub struct Ticket {
                pub sname: String,
                pub session_key: [u8; 8],
            }
        "#;
        let f = scan_file("crates/x/src/a.rs", src);
        assert_eq!(keys(&f), vec![("L1", "session_key".to_string())]);
    }

    #[test]
    fn l1_exempts_redacted_wrapper_types() {
        let src = r#"
            #[derive(Debug)]
            pub struct SrvtabEntry {
                pub key: DesKey,
                pub skey: SecretKey,
            }
        "#;
        assert!(scan_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn l1_ignores_scalar_key_metadata() {
        let src = r#"
            #[derive(Debug)]
            pub struct PrincipalEntry { pub key_version: u8, pub max_life: u8 }
        "#;
        assert!(scan_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn l1_ignores_structs_without_debug() {
        let src = r#"
            #[derive(Clone)]
            pub struct Keys { pub master_key: [u8; 8] }
        "#;
        assert!(scan_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn l2_flags_checksum_equality() {
        let src = "fn v(expect: u32, msg: &Msg) -> bool { expect != msg.cksum }";
        let f = scan_file("crates/x/src/a.rs", src);
        assert_eq!(keys(&f), vec![("L2", "cksum".to_string())]);
    }

    #[test]
    fn l2_ignores_db_key_compares_and_crypto_internals() {
        // `key` alone is not an L2 identifier (DB lookups compare keys).
        let f = scan_file("crates/x/src/a.rs", "if self.key_at(e) == key { }");
        assert!(f.is_empty());
        // crates/crypto is exempt wholesale — it implements ct_eq.
        let f = scan_file("crates/crypto/src/lib.rs", "//! d\n#![forbid(unsafe_code)]\nfn c(a: u32, cksum: u32) -> bool { a == cksum }");
        assert!(f.is_empty());
    }

    #[test]
    fn l3_flags_panics_only_in_server_files() {
        let src = "fn h(p: &[u8]) { let x = p.first().unwrap(); panic!(); }";
        let f = scan_file("crates/kdc/src/server.rs", src);
        assert_eq!(
            keys(&f),
            vec![("L3", "unwrap".to_string()), ("L3", "panic".to_string())]
        );
        assert!(scan_file("crates/sim/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != "L3"));
    }

    #[test]
    fn l3_flags_debug_assert() {
        let src = "fn h(ok: bool) { debug_assert!(ok); }";
        let f = scan_file("crates/kdc/src/server.rs", src);
        assert_eq!(keys(&f), vec![("L3", "debug_assert".to_string())]);
    }

    #[test]
    fn cfg_test_modules_are_invisible_to_l1_l3() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[derive(Debug)]
                struct K { key: [u8; 8] }
                #[test]
                fn t() { None::<u8>.unwrap(); }
            }
        "#;
        assert!(scan_file("crates/kdc/src/server.rs", src).is_empty());
    }

    #[test]
    fn lexer_strips_matches_in_comments_and_strings() {
        let src = r#"
            // let x = buf.unwrap();
            fn h() { let s = "cksum == other"; let _ = s; }
        "#;
        assert!(scan_file("crates/kdc/src/server.rs", src).is_empty());
    }

    #[test]
    fn run_refuses_a_root_without_a_manifest() {
        let err = run(Path::new("/nonexistent-krb-lint-root")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn l5_flags_raw_atomics_outside_telemetry() {
        let src = "use std::sync::atomic::AtomicU64;\nstruct S { hits: AtomicU64 }";
        let f = scan_file("crates/kdc/src/server.rs", src);
        assert_eq!(
            keys(&f),
            vec![("L5", "AtomicU64".to_string()), ("L5", "AtomicU64".to_string())]
        );
        // The telemetry crate itself is the one legitimate home.
        assert!(scan_file("crates/telemetry/src/metrics.rs", src).is_empty());
        // Test code may use atomics freely.
        let test_only = "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicUsize; }";
        assert!(scan_file("crates/kdc/src/server.rs", test_only).is_empty());
    }

    #[test]
    fn l6_flags_raw_cipher_construction_outside_crypto() {
        let src = "fn f(k: &DesKey) { let d = FastDes::new(k); let r = Des::new(k); }";
        let f = scan_file("crates/kdc/src/server.rs", src);
        assert_eq!(
            keys(&f),
            vec![
                ("L6", "FastDes::new".to_string()),
                ("L6", "Des::new".to_string())
            ]
        );
        // The crypto crate itself builds ciphers; `Scheduled::new` is the
        // sanctioned constructor everywhere else.
        assert!(scan_file("crates/crypto/src/sched.rs", src).is_empty());
        assert!(scan_file(
            "crates/kdc/src/server.rs",
            "fn f(k: &DesKey) { let s = Scheduled::new(k); }"
        )
        .is_empty());
        // Test modules may construct ciphers directly.
        let test_only = "#[cfg(test)]\nmod tests { fn t() { let d = Des::new(&k); } }";
        assert!(scan_file("crates/kdc/src/server.rs", test_only).is_empty());
    }

    #[test]
    fn l9_catches_what_l7_used_to_and_more() {
        // The old L7 case: a secret type packed into a journal field.
        let src = r#"
            fn f(ctx: &TraceCtx, key: &DesKey) {
                ctx.record(Component::App, EventKind::ApVerified,
                    vec![("key", Field::from(DesKey::clone(key)))]);
            }
        "#;
        let f = scan_file("crates/apps/src/pop.rs", src);
        assert_eq!(keys(&f), vec![("L9", "DesKey".to_string())]);
        // The telemetry crate defines the journal machinery and is exempt.
        assert!(scan_file("crates/telemetry/src/journal.rs", src).is_empty());
        // L7's blind spot: the secret takes a hop before the sink, so no
        // adjacency — L9's dataflow still sees it.
        let hop = r#"
            fn f(ctx: &TraceCtx, key: &DesKey) {
                let copied = key.clone();
                ctx.record(Component::App, EventKind::ApVerified,
                    vec![("key", Field::from(copied))]);
            }
        "#;
        let f = scan_file("crates/apps/src/pop.rs", hop);
        assert_eq!(keys(&f), vec![("L9", "copied".to_string())]);
        // Principals and derived lengths next to the constructor are fine.
        let clean = r#"
            fn f(ctx: &TraceCtx, sched: &Scheduled, name: &Name) {
                let sealed = seal_with(sched, name.as_bytes());
                ctx.record(Component::App, EventKind::ApVerified,
                    vec![("client", Field::from(name.as_str())),
                         ("bytes", Field::from(sealed.len()))]);
            }
        "#;
        assert!(scan_file("crates/apps/src/pop.rs", clean).is_empty());
        // Test modules are exempt, like every rule.
        let test_only =
            "#[cfg(test)]\nmod t { fn t() { let f = Field::from(DesKey::ZERO); } }";
        assert!(scan_file("crates/apps/src/pop.rs", test_only).is_empty());
    }

    #[test]
    fn l8_sees_guards_through_scan_file() {
        let src = r#"
            fn propagate(dep: &Dep) {
                let kdc = dep.master.lock();
                dep.net.send(kdc.port, b"x");
            }
        "#;
        let f = scan_file("crates/kdc/src/propagate.rs", src);
        assert_eq!(keys(&f), vec![("L8", "master_across_send".to_string())]);
        // cfg(test) code may hold guards across anything.
        let test_only = r#"
            #[cfg(test)]
            mod t {
                fn t(dep: &Dep) {
                    let kdc = dep.master.lock();
                    dep.net.send(kdc.port, b"x");
                }
            }
        "#;
        assert!(scan_file("crates/kdc/src/propagate.rs", test_only).is_empty());
    }

    #[test]
    fn explain_serves_every_active_rule() {
        for rule in RULES {
            let r = explain(rule.id).expect("explain hit");
            assert_eq!(r.id, rule.id);
            assert!(!r.detail.is_empty());
        }
        assert!(explain("l8").is_some(), "case-insensitive lookup");
        assert!(explain("L7").is_none(), "L7 is retired");
        assert!(explain("L99").is_none());
    }

    #[test]
    fn json_report_has_the_contract_fields() {
        let report = Report {
            findings: vec![Finding {
                rule: "L8",
                file: "crates/kdc/src/service.rs".to_string(),
                line: 7,
                key: "master_across_dump".to_string(),
                message: "a \"quoted\" message".to_string(),
            }],
            allowed: Vec::new(),
            stale_allow: vec![AllowEntry {
                rule: "L9".to_string(),
                file: "crates/x/src/a.rs".to_string(),
                key: "password".to_string(),
                line: 3,
            }],
            allow_count: 2,
            files_scanned: 41,
        };
        let json = report.render_json();
        assert!(json.starts_with("{\"schema\":\"krb-lint/v2\""));
        assert!(json.contains("\"files_scanned\":41"));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("{\"id\":\"L8\",\"live\":1,\"allowed\":0}"));
        assert!(json.contains("{\"id\":\"L1\",\"live\":0,\"allowed\":0}"));
        assert!(json.contains("\"key\":\"master_across_dump\""));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("{\"rule\":\"L9\",\"file\":\"crates/x/src/a.rs\",\"key\":\"password\"}"));
    }

    #[test]
    fn l4_requires_forbid_and_docs_on_crate_roots() {
        let f = scan_file("crates/x/src/lib.rs", "pub fn a() {}\n");
        assert_eq!(
            keys(&f),
            vec![
                ("L4", "forbid_unsafe".to_string()),
                ("L4", "crate_docs".to_string())
            ]
        );
        let clean = "//! Docs.\n#![forbid(unsafe_code)]\npub fn a() {}\n";
        assert!(scan_file("crates/x/src/lib.rs", clean).is_empty());
        // Non-root files are not subject to L4.
        assert!(scan_file("crates/x/src/util.rs", "pub fn a() {}\n").is_empty());
    }
}
