//! L9 — intraprocedural secret-taint dataflow, superseding L7's same-line
//! adjacency heuristic.
//!
//! The lattice is two-point (`clean` < `tainted`) over local names:
//!
//! - **Sources**: a parameter or `let` whose type mentions a secret type
//!   ([`SECRET_TYPES`]); a call to a key-producing function
//!   ([`SECRET_FNS`]); a name that *is* key material by convention
//!   ([`SECRET_IDENTS`], password-named bindings).
//! - **Transfer**: assignment and `let` re-binding propagate taint;
//!   method calls on a tainted receiver stay tainted (`key.clone()`,
//!   `key.as_bytes()`) — *except* the sanitizing accessors in
//!   [`SAFE_METHODS`] (`.len()`, `.is_empty()`), which launder a secret
//!   into a harmless scalar. A tainted name passed into a *free* (or
//!   path-qualified) call does **not** taint the result: `seal_with(&k,
//!   data)` yields ciphertext, and treating every derived value as secret
//!   would drown the rule in false positives (the paper's protocol
//!   *depends* on ciphertext being safe to transmit).
//! - **Sinks**: the formatting macros ([`SINK_MACROS`]), the journal's
//!   `Field::from` constructor, and the `MonService` response builders
//!   ([`MON_SINK_FNS`]) — a monitoring frame is cleartext on the wire.
//!   Sink arguments are checked for tainted
//!   names, for secret types used inline, and — via the lexer's
//!   inline-capture extraction — for `format!("{key}")`-style captures
//!   that never mention the name outside the string literal (L7's
//!   blind spot).
//!
//! The fixpoint runs per function over `let` bindings and assignments
//! until the tainted set stops growing, so multi-hop chains
//! (`let a = key; let b = a; println!("{b}")`) are caught.

use crate::lexer::{Kind, Token};
use crate::scope::{Call, FnItem, ScopeModel};
use crate::Finding;
use std::collections::HashSet;

/// Types whose values are key material.
pub const SECRET_TYPES: &[&str] = &["DesKey", "SecretKey", "Scheduled"];

/// Functions that *produce* key material.
pub const SECRET_FNS: &[&str] = &["string_to_key", "get_with_key", "random_key"];

/// Names that denote key material wherever they appear.
pub const SECRET_IDENTS: &[&str] = &["session_key", "master_key"];

/// Name fragments that mark a binding as a user password.
pub const PASSWORD_FRAGMENTS: &[&str] = &["password", "passwd"];

/// Methods that launder a secret into a harmless scalar.
pub const SAFE_METHODS: &[&str] = &["len", "is_empty"];

/// Formatting/printing macros that are sinks: their output reaches logs,
/// panics, or journal dumps — all plaintext.
pub const SINK_MACROS: &[&str] = &[
    "format", "println", "print", "eprintln", "eprint", "write", "writeln", "panic",
    "dbg",
];

/// `MonService` response builders are sinks: everything framed here goes
/// to a monitoring client in cleartext, so a health/stats frame must
/// never carry key material.
pub const MON_SINK_FNS: &[&str] = &["frame_str", "frame_u64", "frame_bytes"];

/// Is `name` secret by convention alone?
fn name_is_secret(name: &str) -> bool {
    SECRET_IDENTS.contains(&name)
        || PASSWORD_FRAGMENTS.iter().any(|frag| name.contains(frag))
}

/// Run the L9 taint analysis over one file's token stream and scope model.
pub fn check_l9(rel: &str, tokens: &[Token], model: &ScopeModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        let calls: Vec<&Call> = model.calls_in(f).collect();
        let tainted = tainted_names(tokens, model, f, &calls);

        for c in &calls {
            let sink = if c.is_macro && SINK_MACROS.contains(&c.callee.as_str()) {
                Some(format!("{}!", c.callee))
            } else if !c.is_macro
                && c.callee == "from"
                && c.path_prefix.as_deref() == Some("Field")
            {
                Some("Field::from".to_string())
            } else if !c.is_macro && MON_SINK_FNS.contains(&c.callee.as_str()) {
                Some(c.callee.clone())
            } else {
                None
            };
            let Some(sink) = sink else { continue };
            if let Some((leak, line)) = first_leak(tokens, &tainted, c) {
                findings.push(Finding {
                    rule: "L9",
                    file: rel.to_string(),
                    line,
                    key: leak.clone(),
                    message: format!(
                        "`{leak}` is key material (taint traced from its source in \
                         `{}`) and reaches `{sink}` — formatted output is plaintext; \
                         log principals, codes and lengths, never keys or passwords",
                        f.name
                    ),
                });
            }
        }
    }
    findings
}

/// Fixpoint the tainted-name set for one function.
fn tainted_names(
    tokens: &[Token],
    model: &ScopeModel,
    f: &FnItem,
    calls: &[&Call],
) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();

    // Seed from parameters: `name: Type` where Type mentions a secret
    // type, or the name itself is secret by convention.
    let (plo, phi) = f.params;
    let mut depth = 0i32;
    let mut i = plo;
    while i < phi {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            _ => {}
        }
        if depth == 0
            && tokens[i].kind == Kind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.text == ":")
            && tokens.get(i + 2).map(|t| t.text.as_str()) != Some(":")
        {
            let name = tokens[i].text.clone();
            // Type runs to the `,` at depth 0.
            let mut j = i + 2;
            let mut tdepth = 0i32;
            let mut secret_ty = false;
            while j < phi {
                match tokens[j].text.as_str() {
                    "(" | "[" | "{" | "<" => tdepth += 1,
                    ")" | "]" | "}" | ">" => tdepth -= 1,
                    "," if tdepth == 0 => break,
                    t if SECRET_TYPES.contains(&t) => secret_ty = true,
                    _ => {}
                }
                j += 1;
            }
            if secret_ty || name_is_secret(&name) {
                tainted.insert(name);
            }
            i = j;
            continue;
        }
        i += 1;
    }

    // Fixpoint over `let` bindings and assignments.
    loop {
        let before = tainted.len();
        for b in model.bindings_in(f) {
            if expr_is_tainted(tokens, &tainted, calls, b.init) {
                tainted.extend(b.names.iter().cloned());
            }
        }
        let (blo, bhi) = f.body;
        let mut i = blo + 1;
        while i < bhi {
            // `name = expr ;` — plain assignment, not `==` (lexes as one
            // CompareOp) and not a `=>` match arm.
            let is_assign = tokens[i].kind == Kind::Ident
                && tokens.get(i + 1).is_some_and(|t| {
                    t.kind == Kind::Punct && t.text == "="
                })
                && tokens.get(i + 2).map(|t| t.text.as_str()) != Some(">");
            if is_assign {
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < bhi {
                    match tokens[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if expr_is_tainted(tokens, &tainted, calls, (i + 2, j)) {
                    tainted.insert(tokens[i].text.clone());
                }
                i = j;
                continue;
            }
            i += 1;
        }
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

/// Does the expression spanning `span` carry taint?
fn expr_is_tainted(
    tokens: &[Token],
    tainted: &HashSet<String>,
    calls: &[&Call],
    span: (usize, usize),
) -> bool {
    let (lo, hi) = span;
    for i in lo..hi.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // A key-producing call (`string_to_key(..)`), a secret type
        // (constructor, `DesKey::clone(..)`), or a tainted /
        // conventionally-secret name taints the expression — unless the
        // occurrence is laundered (safe accessor, or consumed by a free
        // call whose result is derived data: `seal_with(..)` ciphertext,
        // `time_per(|| string_to_key(..))` durations).
        let is_secret_fn_call = SECRET_FNS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "(");
        let carries_taint = is_secret_fn_call
            || SECRET_TYPES.contains(&t.text.as_str())
            || tainted.contains(&t.text)
            || name_is_secret(&t.text);
        if carries_taint && !occurrence_is_laundered(tokens, calls, lo, i) {
            return true;
        }
    }
    false
}

/// Is the tainted occurrence at `idx` laundered — either sanitized by a
/// safe accessor or consumed by a free/path call (whose result is derived
/// data, e.g. ciphertext, not the secret itself)?
fn occurrence_is_laundered(
    tokens: &[Token],
    calls: &[&Call],
    expr_lo: usize,
    idx: usize,
) -> bool {
    // `key.len()` / `key.is_empty()` — harmless scalar.
    if tokens.get(idx + 1).is_some_and(|t| t.text == ".")
        && tokens
            .get(idx + 2)
            .is_some_and(|t| SAFE_METHODS.contains(&t.text.as_str()))
    {
        return true;
    }
    // Inside the argument list of a free or path-qualified call that is
    // not itself a key producer: the result is derived, not the secret.
    calls.iter().any(|c| {
        c.receiver.is_none()
            && !c.is_macro
            && c.idx >= expr_lo
            && !SECRET_FNS.contains(&c.callee.as_str())
            && idx >= c.args.0
            && idx < c.args.1
    })
}

/// First tainted thing reaching the sink call `c`: a tainted/secret name
/// in its arguments, a secret type used inline, or an inline format
/// capture of a tainted name. Returns the offending name and its line.
fn first_leak(
    tokens: &[Token],
    tainted: &HashSet<String>,
    c: &Call,
) -> Option<(String, u32)> {
    let (lo, hi) = c.args;
    for i in lo..hi.min(tokens.len()) {
        let t = &tokens[i];
        match t.kind {
            Kind::Ident => {
                if SECRET_TYPES.contains(&t.text.as_str()) {
                    return Some((t.text.clone(), t.line));
                }
                if (tainted.contains(&t.text) || name_is_secret(&t.text))
                    && !(tokens.get(i + 1).is_some_and(|n| n.text == ".")
                        && tokens
                            .get(i + 2)
                            .is_some_and(|n| SAFE_METHODS.contains(&n.text.as_str())))
                {
                    return Some((t.text.clone(), t.line));
                }
            }
            Kind::Literal => {
                for cap in &t.captures {
                    if tainted.contains(cap) || name_is_secret(cap) {
                        return Some((cap.clone(), t.line));
                    }
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::ScopeModel;

    fn l9(src: &str) -> Vec<String> {
        let tokens = lex(src);
        let model = ScopeModel::build(&tokens);
        check_l9("crates/x/src/a.rs", &tokens, &model)
            .into_iter()
            .map(|f| f.key)
            .collect()
    }

    #[test]
    fn secret_typed_param_reaching_format_fires() {
        let src = "fn f(key: &DesKey) -> String { format!(\"{:?}\", key) }";
        assert_eq!(l9(src), vec!["key"]);
    }

    #[test]
    fn multihop_let_chain_is_tracked() {
        let src = "fn f(key: &DesKey) {\n\
                   let a = key.clone();\n\
                   let b = a;\n\
                   println!(\"{:?}\", b);\n\
                   }";
        assert_eq!(l9(src), vec!["b"]);
    }

    #[test]
    fn inline_capture_leak_is_visible() {
        // The name appears only inside the literal — L7 was blind here.
        let src = "fn f(password: &str) { println!(\"pw {password}\"); }";
        assert_eq!(l9(src), vec!["password"]);
    }

    #[test]
    fn field_from_sink_fires_on_secret_type() {
        let src = "fn f(key: &DesKey) { let x = Field::from(DesKey::clone(key)); }";
        assert_eq!(l9(src), vec!["DesKey"]);
    }

    #[test]
    fn mon_frame_builders_are_sinks() {
        // Key material packed into a MonService reply frame fires...
        let src = "fn reply(out: &mut Vec<u8>, key: &DesKey) {\n\
                   frame_bytes(out, key.to_bytes());\n\
                   }";
        assert_eq!(l9(src), vec!["key"]);
        // ...multi-hop taint reaches the builder too...
        let src = "fn reply(out: &mut Vec<u8>, password: &str) {\n\
                   let copied = password;\n\
                   frame_str(out, copied);\n\
                   }";
        assert_eq!(l9(src), vec!["copied"]);
        // ...while framing a laundered scalar stays clean.
        let src = "fn reply(out: &mut Vec<u8>, key: &DesKey) {\n\
                   frame_u64(out, key.len() as u64);\n\
                   }";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn length_is_laundered() {
        let src = "fn f(key: &DesKey) {\n\
                   let n = key.len();\n\
                   println!(\"{n}\");\n\
                   let x = Field::from(key.len());\n\
                   }";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn ciphertext_from_a_free_call_is_clean() {
        let src = "fn f(sched: &Scheduled, data: &[u8]) {\n\
                   let packet = seal_with(sched, data);\n\
                   println!(\"{} bytes\", packet.len());\n\
                   let x = Field::from(packet.len());\n\
                   }";
        assert!(l9(src).is_empty());
    }

    #[test]
    fn assignment_propagates_but_match_arms_do_not_confuse() {
        let src = "fn f(key: &DesKey, sel: u8) {\n\
                   let mut slot = Vec::new();\n\
                   slot = key.to_bytes();\n\
                   match sel { 0 => {}, _ => {} }\n\
                   println!(\"{:?}\", slot);\n\
                   }";
        assert_eq!(l9(src), vec!["slot"]);
    }

    #[test]
    fn conventional_names_are_secret_without_a_type() {
        let src = "fn f(entry: &Entry) { println!(\"{:?}\", entry.session_key); }";
        assert_eq!(l9(src), vec!["session_key"]);
    }

    #[test]
    fn timing_a_key_derivation_is_not_a_key() {
        // `time_per` returns a duration; the key never escapes the closure.
        let src = "fn bench() {\n\
                   let key = string_to_key(\"pw\");\n\
                   let s2k = time_per(10_000, || { black_box(string_to_key(\"pw\")); });\n\
                   println!(\"string_to_key: {s2k:.2} us\");\n\
                   }";
        assert!(l9(src).is_empty());
        // ...but binding the key directly and printing it still fires.
        let bad = "fn bench() {\n\
                   let key = string_to_key(\"pw\");\n\
                   println!(\"{:?}\", key);\n\
                   }";
        assert_eq!(l9(bad), vec!["key"]);
    }

    #[test]
    fn clean_logging_stays_clean() {
        let src = "fn f(name: &str, kvno: u8, key: &DesKey) {\n\
                   let sealed = seal_with(&Scheduled::new(key), name.as_bytes());\n\
                   println!(\"{name} kvno {kvno} {} bytes\", sealed.len());\n\
                   }";
        assert!(l9(src).is_empty());
    }
}
