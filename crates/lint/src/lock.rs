//! L8 — lock discipline on the scope model.
//!
//! Two hazards, both the exact failure modes the ROADMAP-1 sharded-KDC
//! refactor will introduce:
//!
//! 1. **Guard across a blocking call.** A `MutexGuard`/`RwLockGuard`
//!    (anything bound from an empty-argument `.lock()`/`.read()`/
//!    `.write()`) must not be live across an I/O-shaped call — network
//!    send, RPC, kprop transfer, journal publish. Holding the KDC's
//!    master lock while a slave transfer runs serializes every
//!    authentication request behind the slowest replica (paper §5.2 puts
//!    propagation on its own cadence precisely so it cannot stall
//!    ticket-granting). Both shapes fire: a *binding* guard that is still
//!    in scope at the blocking call, and a *temporary* guard created
//!    inside the blocking call's own argument list
//!    (`dump(master.lock().db())` holds the lock for the whole dump).
//! 2. **Lock-order violations.** While one guard is live, acquiring
//!    another lock must follow [`LOCK_ORDER`]: the inner lock's rank must
//!    be strictly greater than the outer's. Acquiring the same lock
//!    twice is self-deadlock; a nested acquisition of a lock that is not
//!    declared in the order at all is a finding too (extend the table
//!    when a genuinely new lock is born — that is a design decision, and
//!    the table is where it gets reviewed).
//!
//! A guard's live range runs from its statement's `;` to the enclosing
//! block's `}`, truncated by an explicit `drop(guard)` — the idiomatic
//! release point this rule exists to encourage.

use crate::lexer::Token;
use crate::scope::{Call, FnItem, ScopeModel};
use crate::Finding;

/// Guard-producing methods: empty-argument `.lock()`/`.read()`/`.write()`.
/// The empty-parens requirement keeps `io::Read::read(&mut buf)` and
/// `io::Write::write(&buf)` out of scope.
pub const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Receivers that are stream handles, not synchronization primitives:
/// `stdout().lock()` is flushing discipline, not a critical section.
const NON_SYNC_RECEIVERS: &[&str] = &["stdout", "stderr", "stdin"];

/// Callee names that are blocking / I/O-shaped in this workspace: netsim
/// delivery (`send`, `rpc*`, `pump`, `recv`), kprop transfer production
/// and framing (`kprop_build`, `dump`, `tcp_kprop_send`), journal
/// emission (`record`, `publish`), and bulk crypto (`seal_with` runs DES
/// over a whole payload) — each takes time proportional to payload or
/// contends on another subsystem's lock.
pub const BLOCKING_CALLS: &[&str] = &[
    "send",
    "send_traced",
    "rpc",
    "rpc_traced",
    "tcp_kprop_send",
    "kprop_build",
    "dump",
    "record",
    "publish",
    "pump",
    "recv",
    "seal_with",
];

/// The single declared lock order, outermost first. A nested acquisition
/// is legal only if the inner lock's index here is strictly greater than
/// the outer's.
pub const LOCK_ORDER: &[&str] = &[
    "master", "kdc", "slave", "kdbm", "primary", "snapshot", "hooks", "keygen",
    "sched_cache", "ledger", "captured", "clients", "registry", "journal", "metrics",
    "stripes", "state",
    // Rebindable counter handles (`RwLock<Counter>`): innermost leaves,
    // held only for the instant of an `.inc()` or a publish-time rebind,
    // and never acquiring anything beneath them.
    "hits", "evictions", "stripe_hits", "swaps",
];

fn rank(lock: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|l| *l == lock)
}

fn is_guard_call(c: &Call) -> bool {
    !c.is_macro
        && GUARD_METHODS.contains(&c.callee.as_str())
        && c.args.0 == c.args.1
        && c.receiver
            .as_deref()
            .is_some_and(|r| !NON_SYNC_RECEIVERS.contains(&r))
}

fn is_blocking_call(c: &Call) -> bool {
    BLOCKING_CALLS.contains(&c.callee.as_str())
}

/// One live guard: its lock name and the token range it is held over.
struct LiveGuard {
    lock: String,
    line: u32,
    /// Held from just after the binding statement's `;`...
    start: usize,
    /// ...to the enclosing block's `}` or an explicit `drop(guard)`.
    end: usize,
}

/// Run the L8 lock-discipline checks over one file's token stream and
/// scope model.
pub fn check_l8(rel: &str, tokens: &[Token], model: &ScopeModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        let calls: Vec<&Call> = model.calls_in(f).collect();
        let guards = binding_guards(tokens, &calls, model, f);

        // Variant 1a: binding guard live across a blocking call.
        for g in &guards {
            for c in &calls {
                if c.idx > g.start && c.idx < g.end && is_blocking_call(c) {
                    findings.push(Finding {
                        rule: "L8",
                        file: rel.to_string(),
                        line: c.line,
                        key: format!("{}_across_{}", g.lock, c.callee),
                        message: format!(
                            "`{}` guard (acquired line {}) is held across `{}`, a \
                             blocking/I/O-shaped call; snapshot what you need, drop \
                             the guard, then call it",
                            g.lock, g.line, c.callee
                        ),
                    });
                }
            }
        }

        // Variant 1b: temporary guard created inside a blocking call's
        // argument list — the guard lives for the whole call.
        for g in calls.iter().filter(|c| is_guard_call(c)) {
            for c in &calls {
                if is_blocking_call(c) && g.idx > c.args.0 && g.idx < c.args.1 {
                    let lock = g.receiver.clone().unwrap_or_default();
                    findings.push(Finding {
                        rule: "L8",
                        file: rel.to_string(),
                        line: g.line,
                        key: format!("{}_across_{}", lock, c.callee),
                        message: format!(
                            "temporary `{}` guard inside the arguments of `{}` holds \
                             the lock for the entire blocking call; take the snapshot \
                             first, then call `{}` on the owned copy",
                            lock, c.callee, c.callee
                        ),
                    });
                }
            }
        }

        // Variant 2: nested acquisition while a binding guard is live —
        // must follow LOCK_ORDER strictly.
        for outer in &guards {
            for inner in calls.iter().filter(|c| is_guard_call(c)) {
                if inner.idx <= outer.start || inner.idx >= outer.end {
                    continue;
                }
                let inner_lock = inner.receiver.clone().unwrap_or_default();
                if inner_lock == outer.lock {
                    findings.push(Finding {
                        rule: "L8",
                        file: rel.to_string(),
                        line: inner.line,
                        key: format!("order_{}_{}", outer.lock, inner_lock),
                        message: format!(
                            "`{}` is re-acquired while its own guard (line {}) is \
                             still live — self-deadlock",
                            outer.lock, outer.line
                        ),
                    });
                    continue;
                }
                match (rank(&outer.lock), rank(&inner_lock)) {
                    (Some(ro), Some(ri)) if ri > ro => {} // declared order, ok
                    (Some(_), Some(_)) => findings.push(Finding {
                        rule: "L8",
                        file: rel.to_string(),
                        line: inner.line,
                        key: format!("order_{}_{}", outer.lock, inner_lock),
                        message: format!(
                            "`{}` is acquired while `{}` (line {}) is held, against \
                             the declared lock order ({}); acquire in order or drop \
                             the outer guard first",
                            inner_lock,
                            outer.lock,
                            outer.line,
                            LOCK_ORDER.join(" < ")
                        ),
                    }),
                    _ => {
                        let undeclared = if rank(&outer.lock).is_none() {
                            &outer.lock
                        } else {
                            &inner_lock
                        };
                        findings.push(Finding {
                            rule: "L8",
                            file: rel.to_string(),
                            line: inner.line,
                            key: format!("order_undeclared_{undeclared}"),
                            message: format!(
                                "nested acquisition of `{inner_lock}` under \
                                 `{}` involves a lock not declared in LOCK_ORDER \
                                 (crates/lint/src/lock.rs); add it to the order \
                                 deliberately",
                                outer.lock
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Guard *bindings* in `f`: a `let` whose initializer ends in a guard
/// acquisition (the guard call is the chain's last link — if another `.`
/// follows the `()`, the guard is a temporary consumed within the
/// statement, variant 1b territory).
fn binding_guards(
    tokens: &[Token],
    calls: &[&Call],
    model: &ScopeModel,
    f: &FnItem,
) -> Vec<LiveGuard> {
    let mut out = Vec::new();
    for b in model.bindings_in(f) {
        // A guard nested inside a block within the initializer
        // (`let port = { let g = m.lock(); g.port };`) drops at that
        // block's `}`, not at the statement — it does not make the outer
        // binding a guard.
        let enclosed_in_block = |idx: usize| {
            (b.init.0..idx).any(|k| {
                tokens[k].text == "{"
                    && model.matches.get(&k).is_some_and(|&close| close > idx)
            })
        };
        let Some(g) = calls.iter().find(|c| {
            is_guard_call(c)
                && c.idx >= b.init.0
                && c.idx < b.init.1
                && tokens.get(c.args.1 + 1).map(|t| t.text.as_str()) != Some(".")
                && !enclosed_in_block(c.idx)
        }) else {
            continue;
        };
        // `drop(name)` truncates the live range to the release point.
        let mut end = b.scope_end;
        for c in calls {
            if c.callee == "drop"
                && c.receiver.is_none()
                && !c.is_macro
                && c.idx > b.stmt_end
                && c.idx < end
                && c.args.1 == c.args.0 + 1
                && tokens
                    .get(c.args.0)
                    .is_some_and(|t| b.names.iter().any(|n| *n == t.text))
            {
                end = c.idx;
            }
        }
        out.push(LiveGuard {
            lock: g.receiver.clone().unwrap_or_default(),
            line: g.line,
            start: b.stmt_end,
            end,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::ScopeModel;

    fn l8(src: &str) -> Vec<(String, u32)> {
        let tokens = lex(src);
        let model = ScopeModel::build(&tokens);
        check_l8("crates/x/src/a.rs", &tokens, &model)
            .into_iter()
            .map(|f| (f.key, f.line))
            .collect()
    }

    #[test]
    fn binding_guard_across_send_fires_once() {
        let src = "fn f(master: &Mutex<Kdc>, net: &Net) {\n\
                   let kdc = master.lock();\n\
                   net.send(kdc.port, b\"x\");\n\
                   }";
        assert_eq!(l8(src), vec![("master_across_send".to_string(), 3)]);
    }

    #[test]
    fn drop_releases_the_guard_before_the_send() {
        let src = "fn f(master: &Mutex<Kdc>, net: &Net) {\n\
                   let kdc = master.lock();\n\
                   let port = kdc.port;\n\
                   drop(kdc);\n\
                   net.send(port, b\"x\");\n\
                   }";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn scoped_guard_does_not_leak_into_the_send() {
        let src = "fn f(master: &Mutex<Kdc>, net: &Net) {\n\
                   let port = { let kdc = master.lock(); kdc.port };\n\
                   net.send(port, b\"x\");\n\
                   }";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn temporary_guard_inside_blocking_args_fires() {
        let src = "fn f(master: &Mutex<Kdc>) -> String {\n\
                   dump::dump(master.lock().db()).unwrap()\n\
                   }";
        assert_eq!(l8(src), vec![("master_across_dump".to_string(), 2)]);
    }

    #[test]
    fn temporary_guard_consumed_locally_is_fine() {
        // The guard never crosses a blocking call: chain ends in a cheap
        // accessor, statement over.
        let src = "fn f(master: &Mutex<Kdc>) -> u32 { master.lock().count() }";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn nested_acquisition_against_the_order_fires() {
        // ledger ranks above master: master-then-ledger is fine...
        let ok = "fn f(d: &Dep) { let m = d.master.lock(); let l = d.ledger.lock(); }";
        assert!(l8(ok).is_empty());
        // ...ledger-then-master is a violation.
        let bad = "fn f(d: &Dep) { let l = d.ledger.lock(); let m = d.master.lock(); }";
        assert_eq!(l8(bad), vec![("order_ledger_master".to_string(), 1)]);
    }

    #[test]
    fn same_lock_twice_is_self_deadlock() {
        let src = "fn f(d: &Dep) { let a = d.master.lock(); let b = d.master.lock(); }";
        assert_eq!(l8(src), vec![("order_master_master".to_string(), 1)]);
    }

    #[test]
    fn undeclared_lock_in_a_nest_fires() {
        let src = "fn f(d: &Dep) { let m = d.master.lock(); let q = d.mystery.lock(); }";
        assert_eq!(l8(src), vec![("order_undeclared_mystery".to_string(), 1)]);
    }

    #[test]
    fn io_read_write_with_args_are_not_guards() {
        let src = "fn f(s: &mut TcpStream, net: &Net) {\n\
                   let n = s.read(&mut buf);\n\
                   net.send(0, b\"x\");\n\
                   s.write(&buf);\n\
                   }";
        assert!(l8(src).is_empty());
    }

    #[test]
    fn stdout_lock_is_not_a_critical_section() {
        let src = "fn f(net: &Net) { let out = stdout().lock(); net.send(0, b\"x\"); }";
        assert!(l8(src).is_empty());
    }
}
