//! Brace-tree / item-level parse on top of the token stream.
//!
//! The token rules (L1–L6) pattern-match flat windows; the scope-aware
//! rules (L8 lock discipline, L9 secret taint) need to know *where* a
//! binding lives and *what* a call's arguments are. This module builds a
//! lightweight IR from the lexed (and `cfg(test)`-stripped) stream:
//!
//! - bracket matching for `()`, `[]`, `{}` across the whole file;
//! - function items with parameter-list and body token spans;
//! - `let` bindings with bound names, initializer span, statement end and
//!   the closing brace of the enclosing block (the binding's drop point);
//! - call expressions (plain, method, `Path::assoc`, and macro bangs)
//!   with argument spans.
//!
//! It is *not* a Rust parser: closures and inner items stay inside their
//! enclosing function's span (which is what an intraprocedural analysis
//! wants — captured locals keep their taint), and pattern idents are
//! over-approximated (a `Some` in `let Some(x) =` registers as a bound
//! name; rules only ever look names *up*, so the extra entries are inert).

use crate::lexer::{Kind, Token};
use std::collections::HashMap;

/// One `fn` item: spans index into the token stream the model was built
/// from.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the parameter list, exclusive of the parentheses.
    pub params: (usize, usize),
    /// Token range of the body, inclusive of both braces.
    pub body: (usize, usize),
}

/// One `let` binding (or destructuring pattern).
#[derive(Debug, Clone)]
pub struct Binding {
    /// Idents bound by the pattern (over-approximated for enum patterns).
    pub names: Vec<String>,
    /// 1-based line of the `let`.
    pub line: u32,
    /// Token index of the `let` keyword.
    pub let_idx: usize,
    /// Initializer token range (after `=`, before the terminating `;`);
    /// empty for `let x;`.
    pub init: (usize, usize),
    /// Token index of the statement's terminating `;` (the binding is
    /// live *after* this point).
    pub stmt_end: usize,
    /// Token index of the enclosing block's `}` — where the binding drops.
    pub scope_end: usize,
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct Call {
    /// Last path segment / method name / macro name.
    pub callee: String,
    /// `true` for `name!(...)` macro invocations.
    pub is_macro: bool,
    /// For method calls, the last ident of the receiver chain
    /// (`dep.master.lock()` → `master`); `None` for plain calls.
    pub receiver: Option<String>,
    /// For `Seg::callee(...)` paths, the segment before the call
    /// (`Field::from` → `Field`, `dump::dump` → `dump`).
    pub path_prefix: Option<String>,
    /// Token index of the callee ident.
    pub idx: usize,
    /// 1-based line of the callee.
    pub line: u32,
    /// Argument token range, exclusive of the delimiters.
    pub args: (usize, usize),
}

/// The scope model for one file.
#[derive(Debug, Default)]
pub struct ScopeModel {
    /// Open-bracket token index → its matching close index (all of
    /// `()`/`[]`/`{}`).
    pub matches: HashMap<usize, usize>,
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Every `let` binding, in source order.
    pub bindings: Vec<Binding>,
    /// Every call expression, in source order.
    pub calls: Vec<Call>,
}

impl ScopeModel {
    /// Build the model from a (stripped) token stream.
    pub fn build(tokens: &[Token]) -> ScopeModel {
        let mut model = ScopeModel { matches: match_brackets(tokens), ..Default::default() };
        model.collect_fns(tokens);
        model.collect_bindings(tokens);
        model.collect_calls(tokens);
        model
    }

    /// Bindings whose `let` lies inside `f`'s body.
    pub fn bindings_in<'a>(&'a self, f: &FnItem) -> impl Iterator<Item = &'a Binding> {
        let (lo, hi) = f.body;
        self.bindings.iter().filter(move |b| b.let_idx > lo && b.let_idx < hi)
    }

    /// Calls whose callee lies inside `f`'s body.
    pub fn calls_in<'a>(&'a self, f: &FnItem) -> impl Iterator<Item = &'a Call> {
        let (lo, hi) = f.body;
        self.calls.iter().filter(move |c| c.idx > lo && c.idx < hi)
    }

    fn collect_fns(&mut self, tokens: &[Token]) {
        let n = tokens.len();
        let mut i = 0;
        while i < n {
            if !(tokens[i].kind == Kind::Ident && tokens[i].text == "fn") {
                i += 1;
                continue;
            }
            // `fn` must be followed by a name; `fn(...)` pointer types are
            // not items.
            let Some(name_tok) = tokens.get(i + 1) else { break };
            if name_tok.kind != Kind::Ident {
                i += 1;
                continue;
            }
            // Skip a generic parameter list `<...>`; `->` inside bounds
            // (`Fn() -> bool`) must not close the angle depth.
            let mut j = i + 2;
            if j < n && tokens[j].text == "<" {
                let mut depth = 1usize;
                j += 1;
                while j < n && depth > 0 {
                    match tokens[j].text.as_str() {
                        "<" => depth += 1,
                        ">" if j > 0 && tokens[j - 1].text != "-" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            if j >= n || tokens[j].text != "(" {
                i += 1;
                continue;
            }
            let Some(&params_close) = self.matches.get(&j) else {
                i += 1;
                continue;
            };
            // The body `{` comes before any `;` (a `;` first means a
            // bodiless trait-method signature).
            let mut k = params_close + 1;
            let mut body = None;
            while k < n {
                match tokens[k].text.as_str() {
                    "{" => {
                        body = self.matches.get(&k).map(|&close| (k, close));
                        break;
                    }
                    ";" => break,
                    _ => k += 1,
                }
            }
            if let Some(body) = body {
                self.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    line: tokens[i].line,
                    params: (j + 1, params_close),
                    body,
                });
                // Scan *into* the body: nested fns become their own items.
                i = body.0 + 1;
            } else {
                i = k.max(i + 1);
            }
        }
    }

    fn collect_bindings(&mut self, tokens: &[Token]) {
        let n = tokens.len();
        // Innermost enclosing `{` for any token index, maintained as a
        // stack during one linear scan.
        let mut braces: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < n {
            match tokens[i].text.as_str() {
                "{" => braces.push(i),
                "}" => {
                    braces.pop();
                }
                "let" if tokens[i].kind == Kind::Ident => {
                    let scope_end = braces
                        .last()
                        .and_then(|open| self.matches.get(open).copied())
                        .unwrap_or(n.saturating_sub(1));
                    if let Some(b) = parse_let(tokens, i, scope_end, &self.matches) {
                        let next = b.stmt_end;
                        self.bindings.push(b);
                        i = next;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn collect_calls(&mut self, tokens: &[Token]) {
        let n = tokens.len();
        for i in 0..n {
            if tokens[i].kind != Kind::Ident {
                continue;
            }
            // Keywords that syntactically precede `(` are not calls.
            if matches!(tokens[i].text.as_str(), "if" | "while" | "match" | "for" | "return") {
                continue;
            }
            let (is_macro, open_idx) = match tokens.get(i + 1).map(|t| t.text.as_str()) {
                Some("!") if matches!(tokens.get(i + 2).map(|t| t.text.as_str()), Some("(") | Some("[")) => {
                    (true, i + 2)
                }
                Some("(") => (false, i + 1),
                _ => continue,
            };
            let Some(&close) = self.matches.get(&open_idx) else { continue };
            let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
            // `fn name(` is a definition, not a call.
            if prev == Some("fn") {
                continue;
            }
            let receiver = if prev == Some(".") {
                Some(receiver_name(tokens, i - 1, &reverse_matches(&self.matches)))
            } else {
                None
            };
            let path_prefix = if i >= 3
                && tokens[i - 1].text == ":"
                && tokens[i - 2].text == ":"
                && tokens[i - 3].kind == Kind::Ident
            {
                Some(tokens[i - 3].text.clone())
            } else {
                None
            };
            self.calls.push(Call {
                callee: tokens[i].text.clone(),
                is_macro,
                receiver,
                path_prefix,
                idx: i,
                line: tokens[i].line,
                args: (open_idx + 1, close),
            });
        }
    }
}

/// Match all brackets in one pass; unbalanced input degrades gracefully
/// (unmatched opens simply have no entry).
fn match_brackets(tokens: &[Token]) -> HashMap<usize, usize> {
    let mut matches = HashMap::new();
    let mut paren = Vec::new();
    let mut square = Vec::new();
    let mut brace = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => paren.push(i),
            "[" => square.push(i),
            "{" => brace.push(i),
            ")" => {
                if let Some(open) = paren.pop() {
                    matches.insert(open, i);
                }
            }
            "]" => {
                if let Some(open) = square.pop() {
                    matches.insert(open, i);
                }
            }
            "}" => {
                if let Some(open) = brace.pop() {
                    matches.insert(open, i);
                }
            }
            _ => {}
        }
    }
    matches
}

fn reverse_matches(matches: &HashMap<usize, usize>) -> HashMap<usize, usize> {
    matches.iter().map(|(&open, &close)| (close, open)).collect()
}

/// The last ident of a method receiver chain; `dot_idx` points at the `.`
/// before the method name. `foo(x).m()` and `a[i].m()` hop over the
/// bracket group to the ident before it.
fn receiver_name(
    tokens: &[Token],
    dot_idx: usize,
    close_to_open: &HashMap<usize, usize>,
) -> String {
    let mut r = match dot_idx.checked_sub(1) {
        Some(r) => r,
        None => return "?".to_string(),
    };
    loop {
        match tokens[r].text.as_str() {
            ")" | "]" => {
                let Some(&open) = close_to_open.get(&r) else { return "?".to_string() };
                match open.checked_sub(1) {
                    Some(prev) => r = prev,
                    None => return "?".to_string(),
                }
            }
            _ => break,
        }
    }
    if tokens[r].kind == Kind::Ident {
        tokens[r].text.clone()
    } else {
        "?".to_string()
    }
}

/// Parse one `let` statement starting at `let_idx`.
fn parse_let(
    tokens: &[Token],
    let_idx: usize,
    scope_end: usize,
    matches: &HashMap<usize, usize>,
) -> Option<Binding> {
    let n = tokens.len();
    // Find the top-level `=` (assignment, not `==`/`=>`), tracking bracket
    // depth so `let x = if c { a } else { b };` and tuple patterns nest.
    let mut depth = 0i32;
    let mut eq = None;
    let mut colon = None;
    let mut j = let_idx + 1;
    while j < n {
        let t = &tokens[j];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // `let` ran off its block: malformed
                }
            }
            ":" if depth == 0 && colon.is_none() => colon = Some(j),
            "=" if depth == 0
                && t.kind == Kind::Punct
                && tokens.get(j + 1).map(|t| t.text.as_str()) != Some(">") =>
            {
                eq = Some(j);
                break;
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Pattern span: up to the type annotation or the `=`/`;`.
    let pat_end = colon.or(eq).unwrap_or(j.min(n));
    let names: Vec<String> = tokens[let_idx + 1..pat_end.min(n)]
        .iter()
        .filter(|t| t.kind == Kind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_"))
        .map(|t| t.text.clone())
        .collect();
    if names.is_empty() {
        return None;
    }
    // Initializer: from past `=` to the statement's `;` at depth 0.
    let (init, stmt_end) = match eq {
        Some(eq_idx) => {
            let mut depth = 0i32;
            let mut k = eq_idx + 1;
            while k < n {
                match tokens[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break; // expression-tail `let` (no `;`)
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            ((eq_idx + 1, k), k)
        }
        None => ((j.min(n), j.min(n)), j.min(n)),
    };
    let _ = matches; // bracket matching already folded into the depth scans
    Some(Binding {
        names,
        line: tokens[let_idx].line,
        let_idx,
        init,
        stmt_end,
        scope_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> (Vec<Token>, ScopeModel) {
        let toks = lex(src);
        let m = ScopeModel::build(&toks);
        (toks, m)
    }

    #[test]
    fn fns_with_generics_and_return_types_parse() {
        let (_, m) = model(
            "fn plain(a: u32) -> bool { a > 0 }\n\
             fn generic<S: Store + Send, F: FnMut(u32) -> bool>(s: S, f: F) { }\n\
             trait T { fn sig(&self); fn with_body(&self) { } }",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "generic", "with_body"]);
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let (_, m) = model("fn outer() { fn inner() { } inner(); }");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn bindings_carry_scope_and_init() {
        let (toks, m) = model(
            "fn f() { let a = g(); { let mut b: u32 = a + 1; h(b); } let (c, d) = pair(); }",
        );
        let names: Vec<Vec<String>> = m.bindings.iter().map(|b| b.names.clone()).collect();
        assert_eq!(names, vec![
            vec!["a".to_string()],
            vec!["b".to_string()],
            vec!["c".to_string(), "d".to_string()]
        ]);
        // `b` drops at the inner block's `}`, before `let (c, d)`.
        let b = &m.bindings[1];
        let c = &m.bindings[2];
        assert!(b.scope_end < c.let_idx);
        // `a`'s scope is the function body's close.
        let a = &m.bindings[0];
        assert_eq!(a.scope_end, m.fns[0].body.1);
        assert!(toks[a.init.0..a.init.1].iter().any(|t| t.text == "g"));
    }

    #[test]
    fn calls_classify_method_path_and_macro() {
        let (_, m) = model(
            "fn f() { dep.master.lock(); Field::from(x); format!(\"{x}\"); plain(1); \
             items[0].push(2); }",
        );
        let find = |name: &str| m.calls.iter().find(|c| c.callee == name).unwrap();
        assert_eq!(find("lock").receiver.as_deref(), Some("master"));
        assert_eq!(find("from").path_prefix.as_deref(), Some("Field"));
        assert!(find("format").is_macro);
        assert!(find("plain").receiver.is_none() && find("plain").path_prefix.is_none());
        assert_eq!(find("push").receiver.as_deref(), Some("items"));
    }

    #[test]
    fn let_else_match_arms_do_not_derail() {
        let (_, m) = model(
            "fn f(o: Option<u32>) -> u32 { match o { Some(v) => v, None => 0 } }",
        );
        // No `let` bindings, one fn, calls include none spurious from `=>`.
        assert!(m.bindings.is_empty());
        assert_eq!(m.fns.len(), 1);
    }
}
