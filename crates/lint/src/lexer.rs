//! A minimal Rust lexer: enough token structure for invariant scanning.
//!
//! Produces identifiers, punctuation, and literal markers with line
//! numbers, and *discards comment and string/char literal contents* so the
//! rules never fire on prose or test fixtures. No dependency on `syn` —
//! the grammar subset the rules need (attributes, derives, struct fields,
//! method calls, macro bangs, brace nesting) survives tokenization intact.
//!
//! One deliberate exception to "contents are discarded": a string literal
//! token carries the *inline format captures* found in its text (`{name}`
//! / `{name:?}`). `format!("{key:?}")` never mentions `key` outside the
//! literal, so a taint rule that only saw identifiers would be blind to
//! the most idiomatic leak of all — the L9 sink check reads
//! [`Token::captures`] to close that hole. The prose itself stays dropped.

/// What a token is, coarsely.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Any single punctuation character (`#`, `[`, `(`, `.`, `!`, ...).
    Punct,
    /// `==` or `!=` (the only multi-char operators the rules care about;
    /// lexing them as units avoids confusing `!=` with a macro bang).
    CompareOp,
    /// A string/char/numeric literal (contents dropped for strings).
    Literal,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Source text (empty for string literals).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
    /// For string literals: the `{ident}` inline format captures the text
    /// contains (empty for every other token). `{{` escapes and positional
    /// / numeric captures are excluded; a `{name:spec}` capture yields
    /// `name`.
    pub captures: Vec<String>,
}

impl Token {
    fn new(kind: Kind, text: String, line: u32) -> Self {
        Token { kind, text, line, captures: Vec::new() }
    }
}

/// Extract inline format-capture identifiers from string-literal contents:
/// `"hello {name} {count:>3} {} {0} {{brace}}"` → `["name", "count"]`.
pub fn format_captures(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        // `{{` is an escaped brace, not a capture.
        if chars.get(i + 1) == Some(&'{') {
            i += 2;
            continue;
        }
        let mut j = i + 1;
        let start = j;
        while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
            j += 1;
        }
        let name: String = chars[start..j].iter().collect();
        // The capture ends at `}` or at a `:format-spec`; anything else
        // (e.g. an expression or stray brace) is not a plain capture.
        let terminated = matches!(chars.get(j), Some('}') | Some(':'));
        let is_ident = !name.is_empty()
            && !name.chars().next().is_some_and(|c| c.is_ascii_digit());
        if terminated && is_ident {
            out.push(name);
        }
        i = j.max(i + 1);
    }
    out
}

/// Tokenize `src`, dropping comments and literal contents.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! bump_lines {
        ($ch:expr) => {
            if $ch == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_lines!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (and byte-raw br#"..."#).
        if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1; // past 'r'
            let mut hashes = 0;
            while j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // j at opening quote
            j += 1;
            let mut contents = String::new();
            loop {
                if j >= n {
                    break;
                }
                if bytes[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0;
                    while k < n && seen < hashes && bytes[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break;
                    }
                }
                bump_lines!(bytes[j]);
                contents.push(bytes[j]);
                j += 1;
            }
            out.push(Token {
                kind: Kind::Literal,
                text: String::new(),
                line,
                captures: format_captures(&contents),
            });
            i = j;
            continue;
        }
        // String literal (and byte string b"...").
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let mut contents = String::new();
            while j < n {
                if bytes[j] == '\\' {
                    // Keep the escaped char (it cannot open a capture).
                    if j + 1 < n {
                        contents.push(bytes[j + 1]);
                    }
                    j += 2;
                    continue;
                }
                if bytes[j] == '"' {
                    j += 1;
                    break;
                }
                bump_lines!(bytes[j]);
                contents.push(bytes[j]);
                j += 1;
            }
            out.push(Token {
                kind: Kind::Literal,
                text: String::new(),
                line,
                captures: format_captures(&contents),
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime: 'a' is a literal, 'a (no closing quote
        // within two chars) is a lifetime.
        if c == '\'' {
            if i + 2 < n && bytes[i + 1] == '\\' {
                // Escaped char literal '\n' / '\u{..}'.
                let mut j = i + 2;
                while j < n && bytes[j] != '\'' {
                    j += 1;
                }
                out.push(Token::new(Kind::Literal, String::new(), line));
                i = j + 1;
                continue;
            }
            if i + 2 < n && bytes[i + 2] == '\'' {
                out.push(Token::new(Kind::Literal, String::new(), line));
                i += 3;
                continue;
            }
            // Lifetime: skip quote, the identifier lexes next round.
            i += 1;
            continue;
        }
        // Identifier / keyword.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && (bytes[i] == '_' || bytes[i].is_alphanumeric()) {
                i += 1;
            }
            out.push(Token::new(Kind::Ident, bytes[start..i].iter().collect(), line));
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
            {
                // Stop a range `0..3` from being swallowed as one number.
                if bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            out.push(Token::new(Kind::Literal, bytes[start..i].iter().collect(), line));
            continue;
        }
        // == / != as units.
        if (c == '=' || c == '!') && i + 1 < n && bytes[i + 1] == '=' {
            // `!=` only when not `!==`-like; Rust has no `!==`, fine.
            // `==` could be the tail of `<=`/`>=`... those lex as two
            // puncts before reaching here, which is fine for our rules.
            out.push(Token::new(Kind::CompareOp, format!("{c}="), line));
            i += 2;
            continue;
        }
        // Any other punctuation, one char at a time.
        out.push(Token::new(Kind::Punct, c.to_string(), line));
        i += 1;
    }
    out
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // r" | r#" | br" | br#"
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != 'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let toks = texts("let a = \"== cksum\"; // == key\n/* != secret */ b");
        assert!(toks.contains(&"a".to_string()));
        assert!(toks.contains(&"b".to_string()));
        assert!(!toks.iter().any(|t| t.contains("cksum") || t.contains("secret")));
    }

    #[test]
    fn compare_ops_are_units() {
        let toks = lex("a == b; c != d; e = f; g!()");
        let ops: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == Kind::CompareOp)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, vec!["==", "!="]);
        // The macro bang survives as punct.
        assert!(toks.iter().any(|t| t.kind == Kind::Punct && t.text == "!"));
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(lines, vec![("a", 1), ("b", 2), ("c", 4)]);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = texts("r#\"== key\"# 'a, 'x' fn");
        assert!(!toks.iter().any(|t| t.contains("key")));
        assert!(toks.contains(&"a".to_string()), "lifetime ident survives");
        assert!(toks.contains(&"fn".to_string()));
    }

    #[test]
    fn numeric_ranges_do_not_merge() {
        let toks = texts("0..3");
        assert_eq!(toks, vec!["0", ".", ".", "3"]);
    }

    #[test]
    fn format_captures_parse() {
        assert_eq!(
            format_captures("a {name} b {count:>3} {} {0} {{esc}} {k:?}"),
            vec!["name", "count", "k"]
        );
        assert!(format_captures("no captures").is_empty());
    }

    #[test]
    fn string_literals_carry_their_captures() {
        let toks = lex(r#"format!("user {who} key {key:?}") r"raw {secret}""#);
        let caps: Vec<Vec<String>> = toks
            .iter()
            .filter(|t| t.kind == Kind::Literal)
            .map(|t| t.captures.clone())
            .collect();
        assert_eq!(caps, vec![vec!["who".to_string(), "key".to_string()], vec![
            "secret".to_string()
        ]]);
        // The literal text itself stays dropped.
        assert!(toks.iter().all(|t| t.kind != Kind::Literal || t.text.is_empty()));
    }
}
