//! `krb-lint` binary: scan the workspace, print findings, exit non-zero
//! when the tree is not clean (live findings or stale allowlist entries).
//!
//! Usage: `krb-lint [ROOT] [--json] [--explain L<k>]`
//!
//! - `--json` emits the machine-readable report (`krb-lint/v2` schema)
//!   instead of the human lines; the exit code still reflects
//!   cleanliness, so CI can pipe the JSON *and* gate on the status.
//! - `--explain L8` prints one rule's full documentation and exits
//!   successfully without scanning.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: krb-lint [ROOT] [--json] [--explain L<k>]");
    ExitCode::FAILURE
}

/// Print a line to stdout, tolerating a closed pipe (`krb-lint --json |
/// head` must not panic — the JSON mode exists to be piped).
fn emit(line: &str) {
    let _ = writeln!(std::io::stdout().lock(), "{line}");
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut explain: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("krb-lint: unknown flag `{flag}`");
                return usage();
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            _ => return usage(),
        }
    }

    if let Some(rule) = explain {
        return match krb_lint::explain(&rule) {
            Some(r) => {
                emit(&format!("{} — {}\n\n{}", r.id, r.title, r.detail));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "krb-lint: no rule `{rule}`; active rules: {}",
                    krb_lint::RULES
                        .iter()
                        .map(|r| r.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(p) => p,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match krb_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("krb-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match krb_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("krb-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        emit(&report.render_json());
    } else {
        for f in &report.findings {
            emit(&f.to_string());
        }
        for e in &report.stale_allow {
            emit(&format!(
                "STALE lint.allow:{} `{}` matches no finding; delete the line",
                e.line, e
            ));
        }
        let per_rule: Vec<String> = report
            .counts()
            .iter()
            .filter(|(_, live, allowed)| live + allowed > 0)
            .map(|(id, live, allowed)| format!("{id}:{live}+{allowed}a"))
            .collect();
        emit(&format!(
            "krb-lint: {} file(s), {} finding(s), {} allowlisted, {} stale allow entr{}{}{}",
            report.files_scanned,
            report.findings.len(),
            report.allowed.len(),
            report.stale_allow.len(),
            if report.stale_allow.len() == 1 { "y" } else { "ies" },
            if per_rule.is_empty() { "" } else { " — " },
            per_rule.join(" "),
        ));
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
