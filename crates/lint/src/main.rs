//! `krb-lint` binary: scan the workspace, print findings, exit non-zero
//! when the tree is not clean (live findings or stale allowlist entries).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match krb_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("krb-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match krb_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("krb-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.stale_allow {
        println!(
            "STALE lint.allow:{} `{}` matches no finding; delete the line",
            e.line, e
        );
    }
    println!(
        "krb-lint: {} finding(s), {} allowlisted, {} stale allow entr{}",
        report.findings.len(),
        report.allowed.len(),
        report.stale_allow.len(),
        if report.stale_allow.len() == 1 { "y" } else { "ies" },
    );

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
