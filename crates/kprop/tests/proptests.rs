//! Property tests for the propagation framing: round trips for any dump
//! content, rejection of any single-byte corruption, and no panics on
//! arbitrary packets.

use krb_crypto::{string_to_key, DesKey};
use krb_kprop::{frame, kpropd_verify, PropError};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = DesKey> {
    any::<[u8; 8]>().prop_map(DesKey::from_bytes)
}

proptest! {
    /// Any corruption of any byte of a framed transfer is detected (either
    /// as framing damage or as a checksum mismatch).
    #[test]
    fn every_single_byte_corruption_detected(
        idx_seed in any::<u16>(),
        flip in 1u8..=255,
    ) {
        // A real, valid dump for a small database.
        let mut db = krb_kdb::PrincipalDb::create(krb_kdb::MemStore::new(), string_to_key("mk"), 0).unwrap();
        db.add_principal("alpha", "", &string_to_key("a"), 100, 96, 0, "i.").unwrap();
        let packet_ok = krb_kprop::kprop_build(&db).unwrap();
        let mut packet = packet_ok.clone();
        let idx = (idx_seed as usize) % packet.len();
        packet[idx] ^= flip;
        match kpropd_verify(&packet, &string_to_key("mk")) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "corruption at {idx} accepted"),
        }
        // The pristine packet still verifies (the corruption detection is
        // not just rejecting everything).
        prop_assert!(kpropd_verify(&packet_ok, &string_to_key("mk")).is_ok());
    }

    /// Arbitrary bytes never panic the verifier.
    #[test]
    fn arbitrary_packets_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400), key in arb_key()) {
        let _ = kpropd_verify(&bytes, &key);
    }

    /// The checksum is key-dependent: framing under one key never verifies
    /// under a different key (for non-trivial dumps).
    #[test]
    fn checksum_requires_the_master_key(k1 in arb_key(), k2 in arb_key(), data in proptest::collection::vec(any::<u8>(), 8..64)) {
        prop_assume!(k1.as_bytes() != k2.as_bytes());
        let packet = frame(&k1, &data);
        match kpropd_verify(&packet, &k2) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "wrong key accepted"),
        }
    }
}
