//! Skew-edge regression suite for incremental replication (ISSUE 10).
//!
//! The two sequencing edges a journaled stream can get wrong — a record
//! the slave has already applied, and a record from beyond the next
//! expected position — must each be refused with a *typed* error
//! ([`PropError::ReplayedUpdate`] / [`PropError::SequenceGap`]) carrying
//! the exact sequence numbers, must leave the replica untouched, and on
//! the wire must surface as `kprop_reject` journal events with the right
//! slugs, reconciling exactly with the counters (the krb-mon
//! metrics≡journal oracle).

use krb_crypto::string_to_key;
use krb_kdb::dump as kdump;
use krb_kdb::{MemStore, PrincipalDb};
use krb_kprop::{
    build_full_seq, build_incr_segment, parse_incr_reply, IncrKpropdService, IncrReply, PropError,
    UpdateLog, UpdateOp, UpdateRecord,
};

const NOW: u32 = 600_000_000;

fn add(master: &mut PrincipalDb<MemStore>, log: &mut UpdateLog, name: &str) {
    let key = string_to_key(&format!("pw-{name}"));
    master.add_principal(name, "", &key, u32::MAX, 96, NOW, "kadmin.").unwrap();
    log.append(UpdateOp::Put(master.get(name, "").unwrap().unwrap()));
}

#[test]
fn replayed_record_and_sequence_gap_draw_typed_errors() {
    use krb_kprop::IncrReplica;
    let mk = string_to_key("mk");
    let mut master = PrincipalDb::create(MemStore::new(), mk, NOW).unwrap();
    let mut log = UpdateLog::new(32);
    let mut replica = IncrReplica::new(mk);

    // Bootstrap at journal position 0.
    let dump = kdump::dump(&master).unwrap();
    let full = build_full_seq(master.master_sched(), 0, dump.as_bytes());
    assert_eq!(replica.apply(&full).unwrap().seq(), 0);

    // Two journaled writes, shipped as one segment.
    add(&mut master, &mut log, "amy");
    add(&mut master, &mut log, "bcn");
    let seg = build_incr_segment(master.master_sched(), 0, &log.since(0).unwrap()).unwrap();
    assert_eq!(replica.apply(&seg).unwrap().seq(), 2);

    // Skew edge 1: the identical segment again. The refusal must be the
    // typed replay error with the exact positions, not a generic failure.
    match replica.apply(&seg) {
        Err(PropError::ReplayedUpdate { applied: 2, first: 1 }) => {}
        other => panic!("replayed segment drew {other:?}"),
    }

    // Skew edge 2: a record from beyond the next expected sequence.
    let future = UpdateRecord {
        seq: 4,
        op: UpdateOp::Delete { name: "amy".to_string(), instance: String::new() },
    };
    let gap = build_incr_segment(master.master_sched(), 3, &[future]).unwrap();
    match replica.apply(&gap) {
        Err(PropError::SequenceGap { applied: 2, first: 4 }) => {}
        other => panic!("out-of-order segment drew {other:?}"),
    }

    // Neither refusal touched the installed mirror.
    assert_eq!(replica.applied_seq(), 2);
    assert_eq!(replica.dump_text().unwrap(), kdump::dump(&master).unwrap());
}

#[test]
fn refusals_surface_as_typed_reject_events_and_counters_reconcile() {
    use krb_netsim::{ports, Endpoint, NetConfig, Router, SimNet};
    use krb_telemetry::{fixed_clock_us, EventKind, Field, Journal, Registry, TraceId};
    use std::sync::Arc;

    let mk = string_to_key("mk");
    let mut master = PrincipalDb::create(MemStore::new(), mk, NOW).unwrap();
    let mut log = UpdateLog::new(32);
    add(&mut master, &mut log, "amy");

    let registry = Arc::new(Registry::new());
    let journal = Journal::shared();
    let mut svc = IncrKpropdService::new(mk, |_db| {});
    svc.set_registry(Arc::clone(&registry));
    svc.set_journal(Arc::clone(&journal), fixed_clock_us(7));
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let slave_ep = Endpoint::new([18, 72, 0, 11], ports::KPROP);
    router.serve(slave_ep, svc);
    let master_ep = Endpoint::new([18, 72, 0, 10], 1000);
    let mut trace_n = 0u64;
    let mut ship = |router: &mut Router, packet: &[u8]| {
        trace_n += 1;
        let t = TraceId::derive(11, trace_n);
        parse_incr_reply(&router.rpc_traced(master_ep, slave_ep, packet, Some(t)).unwrap())
    };

    // Transfer 1: bootstrap full dump at the current head — accepted.
    let dump = kdump::dump(&master).unwrap();
    let full = build_full_seq(master.master_sched(), log.head(), dump.as_bytes());
    assert_eq!(ship(&mut router, &full), IncrReply::Accepted(1));

    // Transfer 2: one more write, shipped incrementally — accepted.
    add(&mut master, &mut log, "bcn");
    let seg = build_incr_segment(master.master_sched(), 1, &log.since(1).unwrap()).unwrap();
    assert_eq!(ship(&mut router, &seg), IncrReply::Accepted(2));

    // Transfer 3: the same segment replayed — refused, typed.
    match ship(&mut router, &seg) {
        IncrReply::Rejected(why) => assert!(why.contains("replayed update"), "{why}"),
        other => panic!("replay drew {other:?}"),
    }

    // Transfer 4: a segment from the future — refused, typed.
    let future = UpdateRecord {
        seq: 6,
        op: UpdateOp::Delete { name: "amy".to_string(), instance: String::new() },
    };
    let gap = build_incr_segment(master.master_sched(), 5, &[future]).unwrap();
    match ship(&mut router, &gap) {
        IncrReply::Rejected(why) => assert!(why.contains("sequence gap"), "{why}"),
        other => panic!("gap drew {other:?}"),
    }

    // The counters tell the same story...
    assert_eq!(registry.counter_value("kprop_rounds_total"), 4);
    assert_eq!(registry.counter_value("kprop_accepted_total"), 2);
    assert_eq!(registry.counter_value("kprop_rejected_total"), 2);
    // The mode split counts *installed* transfers: one bootstrap full,
    // one incremental apply — the two refusals installed nothing.
    assert_eq!(registry.counter_value("kprop_full_total"), 1);
    assert_eq!(registry.counter_value("kprop_incr_total"), 1);
    let gauges = registry.gauges();
    assert!(gauges.iter().any(|(n, v)| n == "kprop_applied_seq" && *v == 2), "{gauges:?}");

    // ...as the journal: two typed reject events with the exact slugs.
    let why_slugs: Vec<String> = journal
        .dump()
        .iter()
        .filter(|e| e.kind == EventKind::KpropReject)
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match v {
                Field::Str(s) if *k == "why" => Some(s.clone()),
                _ => None,
            })
        })
        .collect();
    assert_eq!(why_slugs, vec!["replayed_update".to_string(), "sequence_gap".to_string()]);

    // And the krb-mon oracle agrees the two views reconcile exactly.
    let consistency = krb_mon::consistency_check(&registry, &journal).unwrap();
    assert!(consistency.is_consistent(), "{}", consistency.describe_mismatches());
}
