//! Model-based convergence suite for the incremental journal (ISSUE 10).
//!
//! Random interleavings of kadm writes, incremental ships, faulted ships
//! (dropped acks, duplicated packets, corrupted bytes), journal eviction
//! (gap-induced full-dump fallbacks), and slave restarts — after which the
//! master's recovery policy must always converge the slave to the master
//! state, checked three ways: replica dump == master dump == a BTreeMap
//! reference model maintained alongside every write. Divergence is never
//! installed: at every quiescent point (`applied_seq == log.head()`), the
//! replica dump equals the master dump.

use krb_crypto::string_to_key;
use krb_kdb::dump as kdump;
use krb_kdb::{MemStore, PrincipalDb, PrincipalEntry};
use krb_kprop::{
    build_full_seq, build_incr_segment, IncrReplica, ShipPlan, SlaveCursor, UpdateLog, UpdateOp,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const NOW: u32 = 600_000_000;
const POOL: [&str; 6] = ["amy", "bcn", "jis", "raeburn", "treese", "zephyr"];

#[derive(Debug, Clone)]
enum Action {
    /// Register (or, if present, rotate) a principal from the pool.
    Write(u8),
    /// Remove a principal from the pool if present.
    Remove(u8),
    /// Ship the planned transfer and process the ack.
    Ship,
    /// Ship but lose the ack: the master must mark the slave unsynced.
    ShipDropAck,
    /// Ship, then deliver the identical packet a second time (duplicate).
    ShipDuplicate,
    /// Ship with one byte corrupted in flight.
    ShipCorrupt(u16),
    /// The slave restarts from scratch, losing its mirror.
    SlaveRestart,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..POOL.len() as u8).prop_map(Action::Write),
        2 => (0u8..POOL.len() as u8).prop_map(Action::Remove),
        4 => Just(Action::Ship),
        1 => Just(Action::ShipDropAck),
        1 => Just(Action::ShipDuplicate),
        1 => any::<u16>().prop_map(Action::ShipCorrupt),
        1 => Just(Action::SlaveRestart),
    ]
}

struct Harness {
    master: PrincipalDb<MemStore>,
    /// Reference model: (name, instance) -> entry, maintained independently
    /// of the database code under test.
    model: BTreeMap<(String, String), PrincipalEntry>,
    log: UpdateLog,
    cursor: SlaveCursor,
    replica: IncrReplica,
    writes: u32,
}

impl Harness {
    fn new(log_cap: usize) -> Self {
        let master = PrincipalDb::create(MemStore::new(), string_to_key("mk"), NOW).unwrap();
        let mut model = BTreeMap::new();
        let km = master.get("K", "M").unwrap().unwrap();
        model.insert(("K".to_string(), "M".to_string()), km);
        Harness {
            master,
            model,
            log: UpdateLog::new(log_cap),
            cursor: SlaveCursor::new(),
            replica: IncrReplica::new(string_to_key("mk")),
            writes: 0,
        }
    }

    fn write(&mut self, who: usize) {
        let name = POOL[who];
        self.writes += 1;
        let now = NOW + self.writes;
        if self.master.exists(name, "").unwrap() {
            let new_key = string_to_key(&format!("pw-{name}-{}", self.writes));
            self.master.change_key(name, "", &new_key, now, "kadmin.").unwrap();
        } else {
            let key = string_to_key(&format!("pw-{name}"));
            self.master.add_principal(name, "", &key, u32::MAX, 96, now, "kadmin.").unwrap();
        }
        let entry = self.master.get(name, "").unwrap().unwrap();
        self.model.insert((name.to_string(), String::new()), entry.clone());
        self.log.append(UpdateOp::Put(entry));
    }

    fn remove(&mut self, who: usize) {
        let name = POOL[who];
        if !self.master.exists(name, "").unwrap() {
            return;
        }
        self.master.delete(name, "").unwrap();
        self.model.remove(&(name.to_string(), String::new()));
        self.log.append(UpdateOp::Delete { name: name.to_string(), instance: String::new() });
    }

    fn build_packet(&self) -> Option<Vec<u8>> {
        match self.cursor.plan(&self.log) {
            ShipPlan::Full => {
                let dump = kdump::dump(&self.master).unwrap();
                Some(build_full_seq(self.master.master_sched(), self.log.head(), dump.as_bytes()))
            }
            ShipPlan::Segment(records) => {
                if records.is_empty() {
                    return None;
                }
                Some(
                    build_incr_segment(self.master.master_sched(), self.cursor.acked, &records)
                        .unwrap(),
                )
            }
        }
    }

    /// Deliver a packet to the replica and return the master-visible ack.
    fn deliver(&mut self, packet: &[u8]) -> Result<u64, String> {
        self.replica.apply(packet).map(|a| a.seq()).map_err(|e| e.to_string())
    }

    fn ship(&mut self, fate: ShipFate) {
        let Some(packet) = self.build_packet() else { return };
        match fate {
            ShipFate::Clean => match self.deliver(&packet) {
                Ok(seq) => self.cursor.on_ack(seq),
                Err(_) => self.cursor.on_failure(),
            },
            ShipFate::DropAck => {
                // The slave may or may not have applied it; the master only
                // knows the ack never came.
                let _ = self.deliver(&packet);
                self.cursor.on_failure();
            }
            ShipFate::Duplicate => {
                let first = self.deliver(&packet);
                let second = self.deliver(&packet);
                // A duplicated *segment* that landed must be refused on
                // redelivery as a replayed update; duplicated full dumps
                // are idempotent. (If the first copy was itself refused —
                // say the slave restarted — the duplicate draws the same
                // refusal, which is fine.)
                if packet.starts_with(krb_kprop::INCR_MAGIC) && first.is_ok() {
                    assert!(
                        second.as_ref().err().is_some_and(|e| e.contains("replayed update")),
                        "duplicate segment not refused: {second:?}"
                    );
                }
                match first {
                    Ok(seq) => self.cursor.on_ack(seq),
                    Err(_) => self.cursor.on_failure(),
                }
            }
            ShipFate::Corrupt(pos) => {
                let mut bad = packet.clone();
                let idx = pos as usize % bad.len();
                bad[idx] ^= 0x5a;
                match self.deliver(&bad) {
                    // Corruption must never be applied silently; if the flip
                    // survived verification it must still be an exact,
                    // well-formed packet — which a single xor never is, so
                    // acceptance here is a hard failure.
                    Ok(_) => panic!("corrupted packet accepted (byte {idx})"),
                    Err(_) => self.cursor.on_failure(),
                }
            }
        }
        self.check_quiescent();
    }

    /// The conservation oracle: whenever the replica claims the master's
    /// journal head, its database must equal the master's exactly.
    fn check_quiescent(&self) {
        if self.cursor.synced && self.replica.applied_seq() == self.log.head() {
            // A freshly restarted replica has no mirror yet; until the next
            // transfer lands there is nothing to compare (and nothing being
            // served divergently).
            if let Some(replica_dump) = self.replica.dump_text() {
                assert_eq!(
                    replica_dump,
                    kdump::dump(&self.master).unwrap(),
                    "divergent replica at quiescent seq {}",
                    self.log.head()
                );
            }
        }
    }

    fn model_dump(&self) -> String {
        let mut lines: Vec<String> =
            self.model.values().map(kdump::entry_to_line).collect();
        lines.sort_unstable();
        let mut out = format!("KDB_DUMP_V1 {}\n", lines.len());
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Final convergence: keep shipping until the cursor holds the head,
    /// then run one scheduled anti-entropy full dump — the mechanism that
    /// catches a slave restart the master never observed (its cursor still
    /// claims sync, but the slave's mirror is gone or stale).
    fn converge(&mut self) {
        for _ in 0..8 {
            if self.cursor.synced && self.cursor.acked == self.log.head() {
                break;
            }
            self.ship(ShipFate::Clean);
        }
        assert!(self.cursor.synced, "recovery policy failed to resync");
        assert_eq!(self.cursor.acked, self.log.head());
        if self.replica.db().is_none() || self.replica.applied_seq() != self.log.head() {
            let dump = kdump::dump(&self.master).unwrap();
            let packet =
                build_full_seq(self.master.master_sched(), self.log.head(), dump.as_bytes());
            let seq = self.deliver(&packet).expect("anti-entropy full dump refused");
            self.cursor.on_ack(seq);
        }
    }
}

#[derive(Clone, Copy)]
enum ShipFate {
    Clean,
    DropAck,
    Duplicate,
    Corrupt(u16),
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn faulted_interleavings_always_converge(
        actions in proptest::collection::vec(arb_action(), 1..80),
        log_cap in 1usize..12,
    ) {
        let mut h = Harness::new(log_cap);
        for a in &actions {
            match a {
                Action::Write(i) => h.write(*i as usize),
                Action::Remove(i) => h.remove(*i as usize),
                Action::Ship => h.ship(ShipFate::Clean),
                Action::ShipDropAck => h.ship(ShipFate::DropAck),
                Action::ShipDuplicate => h.ship(ShipFate::Duplicate),
                Action::ShipCorrupt(p) => h.ship(ShipFate::Corrupt(*p)),
                Action::SlaveRestart => {
                    h.replica = IncrReplica::new(string_to_key("mk"));
                    // The master does not know: its next segment gets a
                    // sequence-gap refusal, driving the full-dump fallback.
                }
            }
        }
        h.converge();
        let master_dump = kdump::dump(&h.master).unwrap();
        prop_assert_eq!(h.replica.dump_text().unwrap(), master_dump.clone(), "replica != master");
        prop_assert_eq!(master_dump, h.model_dump(), "master != reference model");
    }

    /// The no-fault special case: a purely incremental stream (small writes,
    /// generous journal) must never need a full dump after bootstrap.
    #[test]
    fn clean_incremental_stream_never_falls_back(
        writes in proptest::collection::vec((0u8..POOL.len() as u8, any::<bool>()), 1..40),
    ) {
        let mut h = Harness::new(4096);
        h.ship(ShipFate::Clean); // bootstrap full dump
        prop_assert!(h.cursor.synced);
        for (i, del) in writes {
            if del { h.remove(i as usize) } else { h.write(i as usize) }
            let plan = h.cursor.plan(&h.log);
            prop_assert!(
                matches!(plan, ShipPlan::Segment(_)),
                "clean stream planned a full dump"
            );
            h.ship(ShipFate::Clean);
            prop_assert_eq!(h.replica.applied_seq(), h.log.head());
        }
        prop_assert_eq!(h.replica.dump_text().unwrap(), kdump::dump(&h.master).unwrap());
    }
}
