//! # krb-kprop — Kerberos database propagation
//!
//! The "propagation software" of Figure 1 in Steiner, Neuman & Schiller
//! (USENIX 1988), per §5.3 and Figure 13:
//!
//! > "The master database is dumped every hour. The database is sent, in
//! > its entirety, to the slave machines ... First kprop sends a checksum
//! > of the new database it is about to send. The checksum is encrypted in
//! > the Kerberos master database key, which both the master and slave
//! > Kerberos machines possess. ... The slave propagation server
//! > calculates a checksum of the data it has received, and if it matches
//! > the checksum sent by the master, the new information is used to
//! > update the slave's database."
//!
//! The dump itself is safe to send because every key in it is already
//! encrypted in the master database key; the checksum defends against
//! *tampering* and against accepting data from anyone but the master.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incr;
pub mod net;

use krb_crypto::{cbc_checksum, cbc_checksum_with, constant_time_eq, DesKey, Scheduled};
use krb_kdb::dump as kdump;
use krb_kdb::{DbError, PrincipalDb, PrincipalEntry, Store};

pub use incr::{
    build_full_seq, build_incr_segment, packet_kind, Applied, IncrReplica, PacketKind, ShipPlan,
    SlaveCursor, UpdateLog, UpdateOp, UpdateRecord, DEFAULT_LOG_CAP, FULL_MAGIC, INCR_MAGIC,
};
pub use net::{
    parse_incr_reply, parse_kprop_reply, reject_kind, tcp_kprop_send, IncrKpropdService,
    IncrReply, KpropReply, KpropdService, TcpKpropd,
};

/// How often the master dumps and propagates: hourly (§5.3).
pub const PROPAGATION_INTERVAL_SECS: u32 = 3600;

/// Propagation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// Transfer framing is damaged.
    BadPacket,
    /// The keyed checksum did not match: tampering, corruption, or a
    /// sender who does not possess the master database key.
    ChecksumMismatch,
    /// An incremental segment started at or before an already-applied
    /// sequence number (duplicate delivery or a replayed capture).
    ReplayedUpdate {
        /// The replica's applied sequence number.
        applied: u64,
        /// First sequence number the refused transfer carried.
        first: u64,
    },
    /// An incremental segment started past the next expected sequence
    /// number: updates were lost in between (or arrived out of order);
    /// the master must fall back to a full dump.
    SequenceGap {
        /// The replica's applied sequence number.
        applied: u64,
        /// First sequence number the refused segment carried.
        first: u64,
    },
    /// The dump did not parse or install.
    Db(DbError),
}

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropError::BadPacket => write!(f, "malformed propagation packet"),
            PropError::ChecksumMismatch => write!(f, "propagation checksum mismatch"),
            PropError::ReplayedUpdate { applied, first } => write!(
                f,
                "replayed update: segment starts at seq {first} but {applied} is already applied"
            ),
            PropError::SequenceGap { applied, first } => write!(
                f,
                "sequence gap: segment starts at seq {first} but replica is at {applied}"
            ),
            PropError::Db(e) => write!(f, "propagation database error: {e}"),
        }
    }
}

impl std::error::Error for PropError {}

impl From<DbError> for PropError {
    fn from(e: DbError) -> Self {
        PropError::Db(e)
    }
}

/// Master side (`kprop`): dump the database and frame it with the keyed
/// checksum. Wire layout: 8-byte checksum, 4-byte big-endian length, dump.
pub fn kprop_build<S: Store>(db: &PrincipalDb<S>) -> Result<Vec<u8>, PropError> {
    let dump = kdump::dump(db)?;
    Ok(frame_with(db.master_sched(), dump.as_bytes()))
}

/// Frame pre-dumped bytes (benches reuse a fixed dump).
pub fn frame(master_key: &DesKey, dump: &[u8]) -> Vec<u8> {
    frame_with(&Scheduled::new(master_key), dump)
}

/// [`frame`] with the master schedule already in hand — the database holds
/// one, so the hourly dump path pays no per-propagation schedule work.
pub fn frame_with(master: &Scheduled, dump: &[u8]) -> Vec<u8> {
    let checksum = cbc_checksum_with(master, &[0u8; 8], dump);
    let mut out = Vec::with_capacity(12 + dump.len());
    out.extend_from_slice(&checksum);
    out.extend_from_slice(&(dump.len() as u32).to_be_bytes());
    out.extend_from_slice(dump);
    out
}

/// Slave side (`kpropd`), verification half: check framing and checksum,
/// parse the dump. Returns the entries ready to install.
pub fn kpropd_verify(packet: &[u8], master_key: &DesKey) -> Result<Vec<PrincipalEntry>, PropError> {
    if packet.len() < 12 {
        return Err(PropError::BadPacket);
    }
    let sent_sum: [u8; 8] = packet[..8].try_into().map_err(|_| PropError::BadPacket)?;
    let len_bytes: [u8; 4] = packet[8..12].try_into().map_err(|_| PropError::BadPacket)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if packet.len() != 12 + len {
        return Err(PropError::BadPacket);
    }
    let dump = &packet[12..];
    let local_sum = cbc_checksum(master_key, &[0u8; 8], dump);
    if !constant_time_eq(&local_sum, &sent_sum) {
        return Err(PropError::ChecksumMismatch);
    }
    let text = std::str::from_utf8(dump).map_err(|_| PropError::BadPacket)?;
    Ok(kdump::parse(text)?)
}

/// Slave side, install half: replace the slave store's contents and reopen
/// it as a principal database under the same master key.
pub fn kpropd_install<S: Store>(
    mut store: S,
    entries: &[PrincipalEntry],
    master_key: DesKey,
) -> Result<PrincipalDb<S>, PropError> {
    kdump::install(&mut store, entries)?;
    Ok(PrincipalDb::open(store, master_key)?)
}

/// One-shot: verify and install in a fresh store.
pub fn kpropd_receive<S: Store>(
    packet: &[u8],
    store: S,
    master_key: DesKey,
) -> Result<PrincipalDb<S>, PropError> {
    let entries = kpropd_verify(packet, &master_key)?;
    kpropd_install(store, &entries, master_key)
}

/// Hourly schedule bookkeeping: decides when the next dump is due.
#[derive(Debug, Clone, Copy)]
pub struct PropSchedule {
    last_dump: u32,
    /// Interval between dumps (seconds); hourly by default.
    pub interval: u32,
}

impl PropSchedule {
    /// Start the schedule at `now`.
    pub fn new(now: u32) -> Self {
        PropSchedule { last_dump: now, interval: PROPAGATION_INTERVAL_SECS }
    }

    /// Whether a propagation is due, and if so, mark it done.
    pub fn due(&mut self, now: u32) -> bool {
        if now.saturating_sub(self.last_dump) >= self.interval {
            self.last_dump = now;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::string_to_key;
    use krb_kdb::MemStore;

    const NOW: u32 = 600_000_000;

    fn master() -> PrincipalDb<MemStore> {
        let mut db = PrincipalDb::create(MemStore::new(), string_to_key("master"), NOW).unwrap();
        for i in 0..20 {
            db.add_principal(&format!("user{i}"), "", &string_to_key(&format!("pw{i}")), NOW * 2, 96, NOW, "i.")
                .unwrap();
        }
        db
    }

    #[test]
    fn propagation_round_trip() {
        let m = master();
        let packet = kprop_build(&m).unwrap();
        let slave = kpropd_receive(&packet, MemStore::new(), string_to_key("master")).unwrap();
        assert_eq!(slave.len(), m.len());
        // The slave can authenticate a user: keys decrypt identically.
        let (_, k) = slave.get_with_key("user7", "").unwrap().unwrap();
        assert_eq!(k.as_bytes(), string_to_key("pw7").as_bytes());
    }

    #[test]
    fn tampered_dump_rejected() {
        let m = master();
        let mut packet = kprop_build(&m).unwrap();
        // Flip one byte of the payload (an attacker editing an entry).
        let n = packet.len() - 5;
        packet[n] ^= 0x20;
        assert_eq!(
            kpropd_receive(&packet, MemStore::new(), string_to_key("master")).map(|_| ()).unwrap_err(),
            PropError::ChecksumMismatch
        );
    }

    #[test]
    fn forged_checksum_without_master_key_rejected() {
        // An attacker who can compute checksums but lacks the master key
        // cannot make the slave accept their data.
        let m = master();
        let dump = krb_kdb::dump::dump(&m).unwrap();
        let forged = frame(&string_to_key("attacker-guess"), dump.as_bytes());
        assert_eq!(
            kpropd_receive(&forged, MemStore::new(), string_to_key("master")).map(|_| ()).unwrap_err(),
            PropError::ChecksumMismatch
        );
    }

    #[test]
    fn truncated_packet_rejected() {
        let m = master();
        let packet = kprop_build(&m).unwrap();
        for cut in [0, 5, 11, packet.len() - 1] {
            assert_eq!(
                kpropd_verify(&packet[..cut], &string_to_key("master")).unwrap_err(),
                PropError::BadPacket,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let m = master();
        let mut packet = kprop_build(&m).unwrap();
        packet.push(0);
        assert_eq!(
            kpropd_verify(&packet, &string_to_key("master")).unwrap_err(),
            PropError::BadPacket
        );
    }

    #[test]
    fn dump_contains_no_plaintext_keys() {
        // §5.3: "the information passed from master to slave over the
        // network is not useful to an eavesdropper".
        let m = master();
        let packet = kprop_build(&m).unwrap();
        let user_key = string_to_key("pw3");
        let hex: String = user_key.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
        let text = String::from_utf8_lossy(&packet);
        assert!(!text.contains(&hex));
    }

    #[test]
    fn schedule_fires_hourly() {
        let mut s = PropSchedule::new(NOW);
        assert!(!s.due(NOW + 1800));
        assert!(s.due(NOW + 3600));
        assert!(!s.due(NOW + 3601), "just fired");
        assert!(s.due(NOW + 7300));
    }

    #[test]
    fn repeated_propagation_is_idempotent() {
        let m = master();
        let packet = kprop_build(&m).unwrap();
        let slave1 = kpropd_receive(&packet, MemStore::new(), string_to_key("master")).unwrap();
        assert_eq!(slave1.len(), m.len());
        // Re-install the same dump over an already-populated store.
        let entries = kpropd_verify(&packet, &string_to_key("master")).unwrap();
        let mut store = MemStore::new();
        krb_kdb::dump::install(&mut store, &entries).unwrap();
        krb_kdb::dump::install(&mut store, &entries).unwrap();
        let slave2 = PrincipalDb::open(store, string_to_key("master")).unwrap();
        assert_eq!(slave2.len(), m.len());
    }
}
