//! Journaled incremental propagation.
//!
//! The paper ships the database "in its entirety, to the slave machines"
//! every hour (§5.3) — viable at Athena's 5,000 principals, not at 10^6.
//! This module adds a per-update journal on the master ([`UpdateLog`]:
//! append-only, sequence-numbered records) shipped slave-ward as checksummed
//! segments, with the full dump demoted to bootstrap, gap recovery, and
//! periodic anti-entropy.
//!
//! Wire formats (both checksummed under the master database key, exactly
//! like the classic dump frame — possession of the master key remains the
//! only authentication, and keys inside records stay encrypted in it):
//!
//! ```text
//! incremental segment:
//!   "KINCSEG1" || checksum[8] || payload
//!   payload = after_seq u64 || count u32 || count * record
//!   record  = tag u8 (1=put, 2=delete) || len u16 || body
//!             put body: a dump line; delete body: "name instance" ('*' = empty)
//!   (record i carries sequence number after_seq + 1 + i)
//!
//! sequenced full dump:
//!   "KFULSEQ1" || checksum[8] || as_of_seq u64 || len u32 || dump text
//! ```
//!
//! The slave ([`IncrReplica`]) applies a segment only when `after_seq`
//! equals its applied sequence number: an already-applied record is refused
//! as [`PropError::ReplayedUpdate`], a sequence past the next expected as
//! [`PropError::SequenceGap`]. Application is stage-then-swap: ops land on
//! a copy of the mirror database and the copy is swapped in only if every
//! op succeeds, so a half-applied segment can never be observed — the same
//! discipline as the KDC's snapshot swap, which is where the mirror is then
//! installed. A master answers a refusal (or any transport failure) by
//! falling back to a full dump ([`SlaveCursor`] encodes that policy), so a
//! faulted stream converges or is rejected — never installs divergence.

use crate::PropError;
use krb_crypto::{cbc_checksum_with, constant_time_eq, DesKey, Scheduled};
use krb_kdb::dump as kdump;
use krb_kdb::{MemStore, PrincipalDb, PrincipalEntry, Store};
use std::collections::VecDeque;

/// Magic prefix of an incremental segment.
pub const INCR_MAGIC: &[u8; 8] = b"KINCSEG1";
/// Magic prefix of a sequenced full dump.
pub const FULL_MAGIC: &[u8; 8] = b"KFULSEQ1";

/// Default bound on journal retention (records kept for lagging slaves).
pub const DEFAULT_LOG_CAP: usize = 4096;

/// One journaled database mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert or replace a principal record (key already encrypted in the
    /// master database key, like every dump line).
    Put(PrincipalEntry),
    /// Remove a principal.
    Delete {
        /// Primary name.
        name: String,
        /// Instance (empty string is the NULL instance).
        instance: String,
    },
}

/// A sequence-numbered journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Position in the master's update sequence, starting at 1.
    pub seq: u64,
    /// The mutation.
    pub op: UpdateOp,
}

/// The master's append-only update journal, bounded to `cap` records.
/// Once the bound evicts old records, a slave that lags past the retained
/// window can no longer be served incrementally ([`UpdateLog::since`]
/// returns `None`) and must take a full dump.
#[derive(Debug, Clone)]
pub struct UpdateLog {
    records: VecDeque<UpdateRecord>,
    head: u64,
    cap: usize,
}

impl UpdateLog {
    /// An empty journal retaining at most `cap` records.
    pub fn new(cap: usize) -> Self {
        UpdateLog { records: VecDeque::new(), head: 0, cap: cap.max(1) }
    }

    /// Append a mutation; returns its sequence number.
    pub fn append(&mut self, op: UpdateOp) -> u64 {
        self.head += 1;
        self.records.push_back(UpdateRecord { seq: self.head, op });
        while self.records.len() > self.cap {
            self.records.pop_front();
        }
        self.head
    }

    /// Sequence number of the newest record (0 if nothing was ever logged).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Records with sequence numbers strictly greater than `after`, oldest
    /// first. `None` means retention has evicted part of that range — the
    /// caller must fall back to a full dump.
    pub fn since(&self, after: u64) -> Option<Vec<UpdateRecord>> {
        if after >= self.head {
            return Some(Vec::new());
        }
        let first_retained = self.records.front().map_or(self.head + 1, |r| r.seq);
        if after + 1 < first_retained {
            return None;
        }
        Some(self.records.iter().filter(|r| r.seq > after).cloned().collect())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

fn op_body(op: &UpdateOp) -> String {
    match op {
        UpdateOp::Put(e) => kdump::entry_to_line(e),
        UpdateOp::Delete { name, instance } => {
            let inst = if instance.is_empty() { "*" } else { instance };
            format!("{name} {inst}")
        }
    }
}

fn parse_op(tag: u8, body: &[u8]) -> Result<UpdateOp, PropError> {
    let text = std::str::from_utf8(body).map_err(|_| PropError::BadPacket)?;
    match tag {
        1 => Ok(UpdateOp::Put(kdump::line_to_entry(text)?)),
        2 => {
            let mut parts = text.split(' ');
            let (name, inst) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(i), None) => (n, i),
                _ => return Err(PropError::BadPacket),
            };
            Ok(UpdateOp::Delete {
                name: name.to_string(),
                instance: if inst == "*" { String::new() } else { inst.to_string() },
            })
        }
        _ => Err(PropError::BadPacket),
    }
}

/// Build an incremental segment from consecutive records. `records` must
/// start at `after_seq + 1` and be gap-free — callers hand this the slice
/// [`UpdateLog::since`] returned.
pub fn build_incr_segment(
    master: &Scheduled,
    after_seq: u64,
    records: &[UpdateRecord],
) -> Result<Vec<u8>, PropError> {
    let mut payload = Vec::with_capacity(16 + records.len() * 48);
    payload.extend_from_slice(&after_seq.to_be_bytes());
    payload.extend_from_slice(&(records.len() as u32).to_be_bytes());
    for (i, r) in records.iter().enumerate() {
        if r.seq != after_seq + 1 + i as u64 {
            return Err(PropError::BadPacket);
        }
        let body = op_body(&r.op);
        if body.len() > u16::MAX as usize {
            return Err(PropError::BadPacket);
        }
        payload.push(match r.op {
            UpdateOp::Put(_) => 1,
            UpdateOp::Delete { .. } => 2,
        });
        payload.extend_from_slice(&(body.len() as u16).to_be_bytes());
        payload.extend_from_slice(body.as_bytes());
    }
    let checksum = cbc_checksum_with(master, &[0u8; 8], &payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(INCR_MAGIC);
    out.extend_from_slice(&checksum);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Build a sequenced full dump: the bootstrap / gap-recovery / anti-entropy
/// transfer, stamped with the journal position it reflects.
pub fn build_full_seq(master: &Scheduled, as_of_seq: u64, dump: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + dump.len());
    payload.extend_from_slice(&as_of_seq.to_be_bytes());
    payload.extend_from_slice(&(dump.len() as u32).to_be_bytes());
    payload.extend_from_slice(dump);
    let checksum = cbc_checksum_with(master, &[0u8; 8], &payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(FULL_MAGIC);
    out.extend_from_slice(&checksum);
    out.extend_from_slice(&payload);
    out
}

/// What a propagation packet claims to be (by magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// `KINCSEG1`: incremental segment.
    IncrSegment,
    /// `KFULSEQ1`: sequenced full dump.
    FullWithSeq,
    /// No incremental magic: the classic unsequenced full-dump frame.
    LegacyFull,
}

/// Classify a propagation packet by its magic prefix.
pub fn packet_kind(packet: &[u8]) -> PacketKind {
    if packet.starts_with(INCR_MAGIC) {
        PacketKind::IncrSegment
    } else if packet.starts_with(FULL_MAGIC) {
        PacketKind::FullWithSeq
    } else {
        PacketKind::LegacyFull
    }
}

/// What an accepted transfer did to the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// An incremental segment landed.
    Incremental {
        /// Records applied (may be 0 for a heartbeat segment).
        records: usize,
        /// The replica's sequence number afterwards.
        seq: u64,
    },
    /// A sequenced full dump replaced the mirror.
    Full {
        /// Entries installed.
        entries: usize,
        /// The replica's sequence number afterwards.
        seq: u64,
    },
}

impl Applied {
    /// The replica sequence number after this transfer.
    pub fn seq(&self) -> u64 {
        match *self {
            Applied::Incremental { seq, .. } | Applied::Full { seq, .. } => seq,
        }
    }
}

/// The slave side of incremental propagation: a mirror database plus the
/// sequence number it reflects. All checks happen before any state change;
/// segment application is stage-then-swap on a copy of the mirror.
pub struct IncrReplica {
    master_key: DesKey,
    sched: Scheduled,
    db: Option<PrincipalDb<MemStore>>,
    applied_seq: u64,
}

impl IncrReplica {
    /// A replica that has never taken a transfer. It refuses incremental
    /// segments with [`PropError::SequenceGap`] until a full dump arrives.
    pub fn new(master_key: DesKey) -> Self {
        let sched = Scheduled::new(&master_key);
        IncrReplica { master_key, sched, db: None, applied_seq: 0 }
    }

    /// Sequence number of the master journal position this mirror reflects.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// The mirror database, once bootstrapped.
    pub fn db(&self) -> Option<&PrincipalDb<MemStore>> {
        self.db.as_ref()
    }

    /// Copy of the mirror, ready to hand to `Kdc::install_db`.
    pub fn snapshot_db(&self) -> Option<PrincipalDb<MemStore>> {
        self.db.as_ref().and_then(|db| db.snapshot_mem().ok())
    }

    /// Canonical dump text of the mirror (the conservation oracle compares
    /// this against the master's).
    pub fn dump_text(&self) -> Option<String> {
        self.db.as_ref().and_then(|db| kdump::dump(db).ok())
    }

    /// Verify and apply one propagation packet (either wire format).
    pub fn apply(&mut self, packet: &[u8]) -> Result<Applied, PropError> {
        match packet_kind(packet) {
            PacketKind::IncrSegment => self.apply_segment(packet),
            PacketKind::FullWithSeq => self.apply_full(packet),
            PacketKind::LegacyFull => Err(PropError::BadPacket),
        }
    }

    fn verify_payload<'a>(&self, packet: &'a [u8]) -> Result<&'a [u8], PropError> {
        if packet.len() < 16 {
            return Err(PropError::BadPacket);
        }
        let sent_sum: [u8; 8] = packet[8..16].try_into().map_err(|_| PropError::BadPacket)?;
        let payload = &packet[16..];
        let local = cbc_checksum_with(&self.sched, &[0u8; 8], payload);
        if !constant_time_eq(&local, &sent_sum) {
            return Err(PropError::ChecksumMismatch);
        }
        Ok(payload)
    }

    fn apply_segment(&mut self, packet: &[u8]) -> Result<Applied, PropError> {
        let payload = self.verify_payload(packet)?;
        if payload.len() < 12 {
            return Err(PropError::BadPacket);
        }
        let after_seq = u64::from_be_bytes(payload[..8].try_into().map_err(|_| PropError::BadPacket)?);
        let count = u32::from_be_bytes(payload[8..12].try_into().map_err(|_| PropError::BadPacket)?) as usize;
        let mut ops = Vec::with_capacity(count);
        let mut off = 12;
        for _ in 0..count {
            if off + 3 > payload.len() {
                return Err(PropError::BadPacket);
            }
            let tag = payload[off];
            let len = u16::from_be_bytes([payload[off + 1], payload[off + 2]]) as usize;
            off += 3;
            if off + len > payload.len() {
                return Err(PropError::BadPacket);
            }
            ops.push(parse_op(tag, &payload[off..off + len])?);
            off += len;
        }
        if off != payload.len() {
            return Err(PropError::BadPacket);
        }
        // Sequencing checks come only after the packet proved authentic and
        // well-formed: a truncated replay must read as damage, not skew.
        let db = match self.db.as_ref() {
            None => {
                return Err(PropError::SequenceGap { applied: 0, first: after_seq + 1 });
            }
            Some(db) => db,
        };
        if after_seq < self.applied_seq {
            return Err(PropError::ReplayedUpdate {
                applied: self.applied_seq,
                first: after_seq + 1,
            });
        }
        if after_seq > self.applied_seq {
            return Err(PropError::SequenceGap {
                applied: self.applied_seq,
                first: after_seq + 1,
            });
        }
        // Stage onto a copy, swap only on full success.
        let mut stage = db.snapshot_mem()?;
        for op in &ops {
            match op {
                UpdateOp::Put(e) => {
                    let key = PrincipalEntry::db_key(&e.name, &e.instance);
                    stage.store_mut().store(&key, &e.encode())?;
                }
                UpdateOp::Delete { name, instance } => {
                    stage.store_mut().delete(&PrincipalEntry::db_key(name, instance))?;
                }
            }
        }
        self.db = Some(stage);
        self.applied_seq += ops.len() as u64;
        Ok(Applied::Incremental { records: ops.len(), seq: self.applied_seq })
    }

    fn apply_full(&mut self, packet: &[u8]) -> Result<Applied, PropError> {
        let payload = self.verify_payload(packet)?;
        if payload.len() < 12 {
            return Err(PropError::BadPacket);
        }
        let as_of_seq = u64::from_be_bytes(payload[..8].try_into().map_err(|_| PropError::BadPacket)?);
        let len = u32::from_be_bytes(payload[8..12].try_into().map_err(|_| PropError::BadPacket)?) as usize;
        if payload.len() != 12 + len {
            return Err(PropError::BadPacket);
        }
        let text = std::str::from_utf8(&payload[12..]).map_err(|_| PropError::BadPacket)?;
        let entries = kdump::parse(text)?;
        // A stale full dump must never roll the mirror back: refusing it is
        // the replayed-update check at dump granularity.
        if self.db.is_some() && as_of_seq < self.applied_seq {
            return Err(PropError::ReplayedUpdate {
                applied: self.applied_seq,
                first: as_of_seq.saturating_add(1),
            });
        }
        let mut store = MemStore::new();
        kdump::install(&mut store, &entries)?;
        let db = PrincipalDb::open(store, self.master_key.clone())?;
        self.db = Some(db);
        self.applied_seq = as_of_seq;
        Ok(Applied::Full { entries: entries.len(), seq: as_of_seq })
    }
}

/// The master's view of one slave: what it has acknowledged and whether the
/// next transfer must be a full dump. Encodes the fallback policy — any
/// refusal or transport failure marks the slave unsynced, and an unsynced
/// or journal-evicted slave gets the full dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveCursor {
    /// Highest sequence number the slave acknowledged.
    pub acked: u64,
    /// Whether the slave is known to be in sync (bootstrap done, no
    /// unacknowledged failure since).
    pub synced: bool,
}

/// What the master should ship next to one slave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipPlan {
    /// Send a sequenced full dump (bootstrap, fallback, or anti-entropy).
    Full,
    /// Send these journal records (empty means nothing new: skip).
    Segment(Vec<UpdateRecord>),
}

impl Default for SlaveCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl SlaveCursor {
    /// A slave that has never been propagated to.
    pub fn new() -> Self {
        SlaveCursor { acked: 0, synced: false }
    }

    /// Decide the next transfer given the master journal.
    pub fn plan(&self, log: &UpdateLog) -> ShipPlan {
        if !self.synced {
            return ShipPlan::Full;
        }
        match log.since(self.acked) {
            None => ShipPlan::Full,
            Some(records) => ShipPlan::Segment(records),
        }
    }

    /// The slave acknowledged a transfer up to `seq`.
    pub fn on_ack(&mut self, seq: u64) {
        self.acked = seq;
        self.synced = true;
    }

    /// The transfer failed (refusal, transport loss, malformed ack):
    /// resync with a full dump next round.
    pub fn on_failure(&mut self) {
        self.synced = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::string_to_key;

    const NOW: u32 = 600_000_000;

    fn master_db() -> PrincipalDb<MemStore> {
        let mut db = PrincipalDb::create(MemStore::new(), string_to_key("mk"), NOW).unwrap();
        for i in 0..8 {
            db.add_principal(&format!("u{i}"), "", &string_to_key(&format!("p{i}")), NOW * 2, 96, NOW, "i.")
                .unwrap();
        }
        db
    }

    fn full_packet(db: &PrincipalDb<MemStore>, as_of: u64) -> Vec<u8> {
        build_full_seq(db.master_sched(), as_of, kdump::dump(db).unwrap().as_bytes())
    }

    fn put_record(db: &PrincipalDb<MemStore>, seq: u64, name: &str, pw: &str) -> UpdateRecord {
        let entry = PrincipalEntry {
            name: name.into(),
            instance: String::new(),
            key_encrypted: db.encrypt_key(&string_to_key(pw)),
            key_version: 1,
            expiration: u32::MAX,
            max_life: 96,
            attributes: 0,
            mod_time: NOW,
            mod_by: "kadmin.".into(),
        };
        UpdateRecord { seq, op: UpdateOp::Put(entry) }
    }

    #[test]
    fn bootstrap_then_incremental_converges() {
        let mut m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        // Bootstrap.
        let applied = replica.apply(&full_packet(&m, 0)).unwrap();
        assert_eq!(applied, Applied::Full { entries: 9, seq: 0 });
        assert_eq!(replica.dump_text().unwrap(), kdump::dump(&m).unwrap());
        // Incremental: one put, one delete.
        let rec1 = put_record(&m, 1, "newbie", "newpw");
        m.add_principal("newbie", "", &string_to_key("newpw"), u32::MAX, 96, NOW, "kadmin.")
            .unwrap();
        m.delete("u3", "").unwrap();
        let rec2 = UpdateRecord {
            seq: 2,
            op: UpdateOp::Delete { name: "u3".into(), instance: String::new() },
        };
        let seg = build_incr_segment(m.master_sched(), 0, &[rec1, rec2]).unwrap();
        let applied = replica.apply(&seg).unwrap();
        assert_eq!(applied, Applied::Incremental { records: 2, seq: 2 });
        assert_eq!(replica.applied_seq(), 2);
        assert_eq!(replica.dump_text().unwrap(), kdump::dump(&m).unwrap());
    }

    #[test]
    fn replica_refuses_incremental_before_bootstrap() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        let seg = build_incr_segment(m.master_sched(), 0, &[]).unwrap();
        assert!(matches!(
            replica.apply(&seg).unwrap_err(),
            PropError::SequenceGap { applied: 0, .. }
        ));
    }

    #[test]
    fn replayed_segment_refused_without_state_change() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let seg = build_incr_segment(m.master_sched(), 0, &[put_record(&m, 1, "a", "b")]).unwrap();
        replica.apply(&seg).unwrap();
        let before = replica.dump_text().unwrap();
        assert_eq!(
            replica.apply(&seg).unwrap_err(),
            PropError::ReplayedUpdate { applied: 1, first: 1 }
        );
        assert_eq!(replica.dump_text().unwrap(), before, "refusal must not mutate");
        assert_eq!(replica.applied_seq(), 1);
    }

    #[test]
    fn gapped_segment_refused() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let seg = build_incr_segment(m.master_sched(), 5, &[put_record(&m, 6, "x", "y")]).unwrap();
        assert_eq!(
            replica.apply(&seg).unwrap_err(),
            PropError::SequenceGap { applied: 0, first: 6 }
        );
    }

    #[test]
    fn tampered_segment_is_checksum_mismatch() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let mut seg =
            build_incr_segment(m.master_sched(), 0, &[put_record(&m, 1, "a", "b")]).unwrap();
        let n = seg.len() - 3;
        seg[n] ^= 0x40;
        assert_eq!(replica.apply(&seg).unwrap_err(), PropError::ChecksumMismatch);
    }

    #[test]
    fn truncated_segment_is_bad_packet_or_checksum() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let seg = build_incr_segment(m.master_sched(), 0, &[put_record(&m, 1, "a", "b")]).unwrap();
        for cut in [0, 8, 15, 20, seg.len() - 1] {
            let err = replica.apply(&seg[..cut]).unwrap_err();
            assert!(
                matches!(err, PropError::BadPacket | PropError::ChecksumMismatch),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn forged_segment_without_master_key_refused() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let wrong = Scheduled::new(&string_to_key("attacker-guess"));
        let seg = build_incr_segment(&wrong, 0, &[put_record(&m, 1, "evil", "pw")]).unwrap();
        assert_eq!(replica.apply(&seg).unwrap_err(), PropError::ChecksumMismatch);
        assert!(replica.dump_text().unwrap().contains("K M"));
        assert!(!replica.dump_text().unwrap().contains("evil"));
    }

    #[test]
    fn stale_full_dump_cannot_roll_back() {
        let mut m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        let old_full = full_packet(&m, 0);
        replica.apply(&old_full).unwrap();
        m.change_key("u1", "", &string_to_key("rotated"), NOW + 5, "kadmin.").unwrap();
        let rec = UpdateRecord {
            seq: 1,
            op: UpdateOp::Put(m.get("u1", "").unwrap().unwrap()),
        };
        let seg = build_incr_segment(m.master_sched(), 0, &[rec]).unwrap();
        replica.apply(&seg).unwrap();
        // Replaying the pre-rotation dump must be refused.
        assert_eq!(
            replica.apply(&old_full).unwrap_err(),
            PropError::ReplayedUpdate { applied: 1, first: 1 }
        );
        assert_eq!(replica.dump_text().unwrap(), kdump::dump(&m).unwrap());
    }

    #[test]
    fn anti_entropy_full_dump_at_same_seq_is_idempotent() {
        let m = master_db();
        let mut replica = IncrReplica::new(string_to_key("mk"));
        replica.apply(&full_packet(&m, 0)).unwrap();
        let again = replica.apply(&full_packet(&m, 0)).unwrap();
        assert_eq!(again, Applied::Full { entries: 9, seq: 0 });
        assert_eq!(replica.dump_text().unwrap(), kdump::dump(&m).unwrap());
    }

    #[test]
    fn update_log_retention_and_since() {
        let m = master_db();
        let mut log = UpdateLog::new(3);
        assert_eq!(log.since(0).unwrap(), vec![]);
        for i in 0..5u64 {
            let seq = log.append(put_record(&m, i + 1, &format!("p{i}"), "pw").op);
            assert_eq!(seq, i + 1);
        }
        assert_eq!(log.head(), 5);
        assert_eq!(log.len(), 3, "cap evicts the oldest");
        assert!(log.since(0).is_none(), "evicted range forces full dump");
        assert!(log.since(1).is_none());
        let tail = log.since(2).unwrap();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(log.since(5).unwrap(), vec![]);
        assert_eq!(log.since(99).unwrap(), vec![]);
    }

    #[test]
    fn cursor_policy_full_then_segments_then_fallback() {
        let m = master_db();
        let mut log = UpdateLog::new(100);
        let mut cur = SlaveCursor::new();
        assert_eq!(cur.plan(&log), ShipPlan::Full, "bootstrap is a full dump");
        cur.on_ack(0);
        assert_eq!(cur.plan(&log), ShipPlan::Segment(vec![]), "in sync, nothing new");
        log.append(put_record(&m, 1, "a", "pw").op);
        match cur.plan(&log) {
            ShipPlan::Segment(rs) => assert_eq!(rs.len(), 1),
            p => panic!("expected segment, got {p:?}"),
        }
        cur.on_failure();
        assert_eq!(cur.plan(&log), ShipPlan::Full, "failure forces full dump");
        cur.on_ack(log.head());
        assert_eq!(cur.plan(&log), ShipPlan::Segment(vec![]));
    }

    #[test]
    fn segment_builder_rejects_non_consecutive_records() {
        let m = master_db();
        let recs = [put_record(&m, 1, "a", "x"), put_record(&m, 3, "b", "y")];
        assert_eq!(
            build_incr_segment(m.master_sched(), 0, &recs).unwrap_err(),
            PropError::BadPacket
        );
    }

    #[test]
    fn segment_contains_no_plaintext_keys() {
        let m = master_db();
        let rec = put_record(&m, 1, "leaky", "super-secret-pw");
        let seg = build_incr_segment(m.master_sched(), 0, &[rec]).unwrap();
        let key = string_to_key("super-secret-pw");
        let hex: String = key.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
        assert!(!String::from_utf8_lossy(&seg).contains(&hex));
    }
}
