//! Propagation over the network: `kpropd` as a datagram service on the
//! simulated network, and the era-faithful bulk transfer over a real TCP
//! stream (the original `kprop` pushed whole-database dumps over TCP).

use crate::incr::{packet_kind, Applied, IncrReplica, PacketKind};
use crate::{kpropd_verify, PropError};
use krb_crypto::DesKey;
use krb_kdb::{MemStore, PrincipalDb, PrincipalEntry};
use krb_netsim::{Packet, Service};
use krb_telemetry::{
    ClockUs, Component, Counter, EventKind, Field, Gauge, Journal, Registry, TraceCtx,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `kpropd` as a network service: verifies each received dump against the
/// master key and hands the entries to an install callback. Replies `OK`
/// or `ERR <why>` so the master knows the transfer landed.
pub struct KpropdService {
    master_key: DesKey,
    /// Called with the verified entries; returns whether install succeeded.
    on_install: Box<dyn FnMut(Vec<PrincipalEntry>) -> bool + Send>,
    registry: Arc<Registry>,
    rounds: Counter,
    accepted: Counter,
    rejected: Counter,
    bytes: Counter,
    tracing: Option<(Arc<Journal>, ClockUs)>,
}

impl KpropdService {
    /// Build a slave-side service around an installer callback. Telemetry
    /// (`kprop_rounds_total`, `kprop_accepted_total`, `kprop_rejected_total`,
    /// `kprop_bytes_total`) is registered on a fresh registry; see
    /// [`KpropdService::set_registry`] to aggregate into a shared one.
    pub fn new(
        master_key: DesKey,
        on_install: impl FnMut(Vec<PrincipalEntry>) -> bool + Send + 'static,
    ) -> Self {
        let registry = Registry::shared();
        let mut svc = KpropdService {
            master_key,
            on_install: Box::new(on_install),
            registry: Arc::clone(&registry),
            rounds: Counter::new(),
            accepted: Counter::new(),
            rejected: Counter::new(),
            bytes: Counter::new(),
            tracing: None,
        };
        svc.bind_metrics(&registry);
        svc
    }

    fn bind_metrics(&mut self, registry: &Registry) {
        self.rounds = registry.counter("kprop_rounds_total");
        self.accepted = registry.counter("kprop_accepted_total");
        self.rejected = registry.counter("kprop_rejected_total");
        self.bytes = registry.counter("kprop_bytes_total");
    }

    /// The registry this service reports into.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Report into a caller-provided registry (counts recorded so far are
    /// dropped; call right after construction).
    pub fn set_registry(&mut self, registry: Arc<Registry>) {
        self.bind_metrics(&registry);
        self.registry = registry;
    }

    /// Transfers accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// Transfers rejected (bad checksum / framing / install failure).
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Total payload bytes received across all propagation rounds.
    pub fn bytes_received(&self) -> u64 {
        self.bytes.get()
    }

    /// Attach an event journal: transfers arriving with a trace id on the
    /// packet (simulator metadata, never wire bytes) are journaled as
    /// `kprop_transfer` followed by `kprop_apply` or `kprop_reject`.
    pub fn set_journal(&mut self, journal: Arc<Journal>, clock_us: ClockUs) {
        self.tracing = Some((journal, clock_us));
    }
}

impl Service for KpropdService {
    fn handle(&mut self, req: &Packet) -> Option<Vec<u8>> {
        self.rounds.inc();
        self.bytes.add(req.payload.len() as u64);
        let ctx = match (&self.tracing, req.trace) {
            (Some((journal, clock)), Some(trace)) => {
                Some(TraceCtx::new(Arc::clone(journal), ClockUs::clone(clock), trace))
            }
            _ => None,
        };
        if let Some(ctx) = &ctx {
            ctx.record(
                Component::Kprop,
                EventKind::KpropTransfer,
                vec![("bytes", Field::from(req.payload.len()))],
            );
        }
        match kpropd_verify(&req.payload, &self.master_key) {
            Ok(entries) => {
                let count = entries.len();
                if (self.on_install)(entries) {
                    self.accepted.inc();
                    if let Some(ctx) = &ctx {
                        ctx.record(
                            Component::Kprop,
                            EventKind::KpropApply,
                            vec![("entries", Field::from(count))],
                        );
                    }
                    Some(b"OK".to_vec())
                } else {
                    self.rejected.inc();
                    if let Some(ctx) = &ctx {
                        ctx.record(
                            Component::Kprop,
                            EventKind::KpropReject,
                            vec![("why", Field::from("install"))],
                        );
                    }
                    Some(b"ERR install".to_vec())
                }
            }
            Err(e) => {
                self.rejected.inc();
                if let Some(ctx) = &ctx {
                    ctx.record(
                        Component::Kprop,
                        EventKind::KpropReject,
                        vec![("why", Field::from(e.to_string()))],
                    );
                }
                Some(format!("ERR {e}").into_bytes())
            }
        }
    }
}

/// `kpropd` for journaled incremental propagation: wraps an
/// [`IncrReplica`] behind the netsim service seam. Each packet (segment or
/// sequenced full dump) is verified and applied stage-then-swap; on commit
/// the install hook receives the new mirror so the serving KDC can swap its
/// snapshot. Replies `OK <seq>` (the applied sequence number, which is the
/// master's cursor ack) or `ERR <why>`.
pub struct IncrKpropdService {
    replica: IncrReplica,
    on_install: Box<dyn FnMut(&PrincipalDb<MemStore>) + Send>,
    registry: Arc<Registry>,
    rounds: Counter,
    accepted: Counter,
    rejected: Counter,
    bytes: Counter,
    incr_rounds: Counter,
    full_rounds: Counter,
    applied_seq: Gauge,
    tracing: Option<(Arc<Journal>, ClockUs)>,
}

impl IncrKpropdService {
    /// Build around a fresh (un-bootstrapped) replica and an install hook.
    pub fn new(
        master_key: DesKey,
        on_install: impl FnMut(&PrincipalDb<MemStore>) + Send + 'static,
    ) -> Self {
        let registry = Registry::shared();
        let mut svc = IncrKpropdService {
            replica: IncrReplica::new(master_key),
            on_install: Box::new(on_install),
            registry: Arc::clone(&registry),
            rounds: Counter::new(),
            accepted: Counter::new(),
            rejected: Counter::new(),
            bytes: Counter::new(),
            incr_rounds: Counter::new(),
            full_rounds: Counter::new(),
            applied_seq: Gauge::new(),
            tracing: None,
        };
        svc.bind_metrics(&registry);
        svc
    }

    fn bind_metrics(&mut self, registry: &Registry) {
        self.rounds = registry.counter("kprop_rounds_total");
        self.accepted = registry.counter("kprop_accepted_total");
        self.rejected = registry.counter("kprop_rejected_total");
        self.bytes = registry.counter("kprop_bytes_total");
        self.incr_rounds = registry.counter("kprop_incr_total");
        self.full_rounds = registry.counter("kprop_full_total");
        self.applied_seq = registry.gauge("kprop_applied_seq");
    }

    /// The registry this service reports into.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Report into a caller-provided registry (call right after
    /// construction; counts recorded so far are dropped).
    pub fn set_registry(&mut self, registry: Arc<Registry>) {
        self.bind_metrics(&registry);
        self.registry = registry;
    }

    /// Attach an event journal (see [`KpropdService::set_journal`]).
    pub fn set_journal(&mut self, journal: Arc<Journal>, clock_us: ClockUs) {
        self.tracing = Some((journal, clock_us));
    }

    /// The replica's applied sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.replica.applied_seq()
    }

    /// Read access to the replica (tests and oracles).
    pub fn replica(&self) -> &IncrReplica {
        &self.replica
    }
}

impl Service for IncrKpropdService {
    fn handle(&mut self, req: &Packet) -> Option<Vec<u8>> {
        self.rounds.inc();
        self.bytes.add(req.payload.len() as u64);
        let mode = match packet_kind(&req.payload) {
            PacketKind::IncrSegment => "incr",
            PacketKind::FullWithSeq => "full",
            PacketKind::LegacyFull => "legacy",
        };
        let ctx = match (&self.tracing, req.trace) {
            (Some((journal, clock)), Some(trace)) => {
                Some(TraceCtx::new(Arc::clone(journal), ClockUs::clone(clock), trace))
            }
            _ => None,
        };
        if let Some(ctx) = &ctx {
            ctx.record(
                Component::Kprop,
                EventKind::KpropTransfer,
                vec![
                    ("bytes", Field::from(req.payload.len())),
                    ("mode", Field::from(mode)),
                ],
            );
        }
        match self.replica.apply(&req.payload) {
            Ok(applied) => {
                self.accepted.inc();
                let (entries, seq) = match applied {
                    Applied::Incremental { records, seq } => {
                        self.incr_rounds.inc();
                        (records, seq)
                    }
                    Applied::Full { entries, seq } => {
                        self.full_rounds.inc();
                        (entries, seq)
                    }
                };
                self.applied_seq.set(seq as i64);
                if let Some(db) = self.replica.db() {
                    (self.on_install)(db);
                }
                if let Some(ctx) = &ctx {
                    ctx.record(
                        Component::Kprop,
                        EventKind::KpropApply,
                        vec![
                            ("entries", Field::from(entries)),
                            ("seq", Field::from(seq)),
                            ("mode", Field::from(mode)),
                        ],
                    );
                }
                Some(format!("OK {seq}").into_bytes())
            }
            Err(e) => {
                self.rejected.inc();
                if let Some(ctx) = &ctx {
                    ctx.record(
                        Component::Kprop,
                        EventKind::KpropReject,
                        vec![
                            ("why", Field::from(reject_kind(&e))),
                            ("mode", Field::from(mode)),
                        ],
                    );
                }
                Some(format!("ERR {e}").into_bytes())
            }
        }
    }
}

/// Short classification of a propagation refusal for journal fields and
/// report tallies (the full [`PropError`] rendering goes on the wire).
pub fn reject_kind(e: &PropError) -> &'static str {
    match e {
        PropError::BadPacket => "bad_packet",
        PropError::ChecksumMismatch => "checksum",
        PropError::ReplayedUpdate { .. } => "replayed_update",
        PropError::SequenceGap { .. } => "sequence_gap",
        PropError::Db(_) => "db",
    }
}

/// Typed view of an incremental `kpropd` reply (`OK <seq>` / `ERR <why>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrReply {
    /// The slave applied the transfer and is now at this sequence number.
    Accepted(u64),
    /// The slave refused; the reason string from the wire.
    Rejected(String),
}

/// Parse an [`IncrKpropdService`] reply. Anything unreadable is a
/// rejection: an unparseable ack must never advance the master's cursor.
pub fn parse_incr_reply(reply: &[u8]) -> IncrReply {
    match std::str::from_utf8(reply) {
        Ok(s) if s.starts_with("OK ") => match s[3..].parse::<u64>() {
            Ok(seq) => IncrReply::Accepted(seq),
            Err(_) => IncrReply::Rejected("malformed ack seq".to_string()),
        },
        Ok(s) if s.starts_with("ERR ") => IncrReply::Rejected(s[4..].to_string()),
        _ => IncrReply::Rejected("malformed reply".to_string()),
    }
}

/// Typed view of a `kpropd` datagram reply, so the master side of a
/// transfer matches on a value instead of on raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KpropReply {
    /// The slave verified and installed the dump.
    Accepted,
    /// The slave refused; the reason string from the wire.
    Rejected(String),
}

/// Parse the `OK` / `ERR <why>` reply bytes a [`KpropdService`] sends.
/// Anything else (including a corrupted reply) is a rejection — a master
/// must never count an unreadable ack as a successful propagation.
pub fn parse_kprop_reply(reply: &[u8]) -> KpropReply {
    if reply == b"OK" {
        return KpropReply::Accepted;
    }
    match std::str::from_utf8(reply) {
        Ok(s) if s.starts_with("ERR ") => KpropReply::Rejected(s[4..].to_string()),
        _ => KpropReply::Rejected("malformed reply".to_string()),
    }
}

/// Run one TCP `kpropd` accept loop on a thread; stops when the returned
/// guard is dropped. Each connection carries one length-prefixed dump.
pub struct TcpKpropd {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// The bound address.
    pub local_addr: SocketAddr,
}

impl TcpKpropd {
    /// Listen on `addr` (e.g. `127.0.0.1:0`), verifying with `master_key`
    /// and installing via the callback.
    pub fn spawn(
        addr: &str,
        master_key: DesKey,
        mut on_install: impl FnMut(Vec<PrincipalEntry>) -> bool + Send + 'static,
    ) -> Result<Self, PropError> {
        let listener = TcpListener::bind(addr).map_err(|_| PropError::BadPacket)?;
        let local_addr = listener.local_addr().map_err(|_| PropError::BadPacket)?;
        listener.set_nonblocking(true).map_err(|_| PropError::BadPacket)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        let _ = conn.set_nonblocking(false);
                        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                        let reply = match read_framed(&mut conn)
                            .and_then(|packet| kpropd_verify(&packet, &master_key))
                        {
                            Ok(entries) => {
                                if on_install(entries) {
                                    b"OK".to_vec()
                                } else {
                                    b"ERR install".to_vec()
                                }
                            }
                            Err(e) => format!("ERR {e}").into_bytes(),
                        };
                        let _ = conn.write_all(&(reply.len() as u32).to_be_bytes());
                        let _ = conn.write_all(&reply);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TcpKpropd { stop, handle: Some(handle), local_addr })
    }
}

impl Drop for TcpKpropd {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn read_framed(conn: &mut TcpStream) -> Result<Vec<u8>, PropError> {
    let mut len_buf = [0u8; 4];
    conn.read_exact(&mut len_buf).map_err(|_| PropError::BadPacket)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > 64 << 20 {
        return Err(PropError::BadPacket);
    }
    let mut buf = vec![0u8; len];
    conn.read_exact(&mut buf).map_err(|_| PropError::BadPacket)?;
    Ok(buf)
}

/// Master side of the TCP transfer: push one framed dump, await the ack.
pub fn tcp_kprop_send(addr: SocketAddr, packet: &[u8]) -> Result<(), PropError> {
    let mut conn = TcpStream::connect(addr).map_err(|_| PropError::BadPacket)?;
    conn.set_read_timeout(Some(Duration::from_secs(5))).map_err(|_| PropError::BadPacket)?;
    conn.write_all(&(packet.len() as u32).to_be_bytes()).map_err(|_| PropError::BadPacket)?;
    conn.write_all(packet).map_err(|_| PropError::BadPacket)?;
    let mut len_buf = [0u8; 4];
    conn.read_exact(&mut len_buf).map_err(|_| PropError::BadPacket)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut reply = vec![0u8; len.min(1024)];
    conn.read_exact(&mut reply).map_err(|_| PropError::BadPacket)?;
    if reply == b"OK" {
        Ok(())
    } else {
        Err(PropError::ChecksumMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{frame, kprop_build};
    use krb_crypto::string_to_key;
    use krb_kdb::{MemStore, PrincipalDb};
    use parking_lot::Mutex;

    const NOW: u32 = 600_000_000;

    fn master_db() -> PrincipalDb<MemStore> {
        let mut db = PrincipalDb::create(MemStore::new(), string_to_key("mk"), NOW).unwrap();
        for i in 0..10 {
            db.add_principal(&format!("u{i}"), "", &string_to_key(&format!("p{i}")), NOW * 2, 96, NOW, "i.")
                .unwrap();
        }
        db
    }

    #[test]
    fn simulated_network_propagation() {
        use krb_netsim::{Endpoint, NetConfig, Router, SimNet};
        let master = master_db();
        let received: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let received2 = Arc::clone(&received);
        let svc = KpropdService::new(string_to_key("mk"), move |entries| {
            *received2.lock() = entries.len();
            true
        });
        let mut router = Router::new(SimNet::new(NetConfig::default()));
        let slave_ep = Endpoint::new([18, 72, 0, 11], krb_netsim::ports::KPROP);
        router.serve(slave_ep, svc);

        let packet = kprop_build(&master).unwrap();
        let master_ep = Endpoint::new([18, 72, 0, 10], 1000);
        let reply = router.rpc(master_ep, slave_ep, &packet).unwrap();
        assert_eq!(reply, b"OK");
        assert_eq!(*received.lock(), 11); // 10 users + K.M
    }

    #[test]
    fn propagation_rounds_and_bytes_are_counted() {
        use krb_netsim::{Endpoint, NetConfig, Router, SimNet};
        let master = master_db();
        let mut svc = KpropdService::new(string_to_key("mk"), |_| true);
        let registry = svc.registry();
        // The registry handle outlives the service being moved into the
        // router — that is how an experiment reads counters afterwards.
        let mut router = Router::new(SimNet::new(NetConfig::default()));
        let slave_ep = Endpoint::new([18, 72, 0, 11], krb_netsim::ports::KPROP);
        svc.set_registry(Arc::clone(&registry)); // idempotent: same handles re-bound
        router.serve(slave_ep, svc);

        let good = kprop_build(&master).unwrap();
        let good_len = good.len() as u64;
        let master_ep = Endpoint::new([18, 72, 0, 10], 1000);
        assert_eq!(router.rpc(master_ep, slave_ep, &good).unwrap(), b"OK");
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        assert!(router.rpc(master_ep, slave_ep, &bad).unwrap().starts_with(b"ERR"));

        assert_eq!(registry.counter_value("kprop_rounds_total"), 2);
        assert_eq!(registry.counter_value("kprop_accepted_total"), 1);
        assert_eq!(registry.counter_value("kprop_rejected_total"), 1);
        assert_eq!(registry.counter_value("kprop_bytes_total"), 2 * good_len);
    }

    #[test]
    fn simulated_network_rejects_tamper() {
        use krb_netsim::{Endpoint, NetConfig, Router, SimNet};
        let master = master_db();
        let svc = KpropdService::new(string_to_key("mk"), |_| true);
        let mut router = Router::new(SimNet::new(NetConfig::default()));
        let slave_ep = Endpoint::new([18, 72, 0, 11], krb_netsim::ports::KPROP);
        router.serve(slave_ep, svc);

        let mut packet = kprop_build(&master).unwrap();
        let n = packet.len();
        packet[n - 1] ^= 1;
        let reply = router.rpc(Endpoint::new([10, 0, 0, 66], 1), slave_ep, &packet).unwrap();
        assert!(reply.starts_with(b"ERR"));
    }

    #[test]
    fn journal_records_transfer_and_verdict_per_round() {
        use krb_netsim::{Endpoint, NetConfig, Router, SimNet};
        use krb_telemetry::{fixed_clock_us, EventKind, TraceId};
        let master = master_db();
        let mut svc = KpropdService::new(string_to_key("mk"), |_| true);
        let journal = Journal::shared();
        svc.set_journal(Arc::clone(&journal), fixed_clock_us(7));
        let mut router = Router::new(SimNet::new(NetConfig::default()));
        let slave_ep = Endpoint::new([18, 72, 0, 11], krb_netsim::ports::KPROP);
        router.serve(slave_ep, svc);

        let good = kprop_build(&master).unwrap();
        let master_ep = Endpoint::new([18, 72, 0, 10], 1000);
        let trace = TraceId::derive(9, 0);
        assert_eq!(router.rpc_traced(master_ep, slave_ep, &good, Some(trace)).unwrap(), b"OK");
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        let trace2 = TraceId::derive(9, 1);
        assert!(router
            .rpc_traced(master_ep, slave_ep, &bad, Some(trace2))
            .unwrap()
            .starts_with(b"ERR"));

        let events = journal.dump();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::KpropTransfer,
                EventKind::KpropApply,
                EventKind::KpropTransfer,
                EventKind::KpropReject
            ]
        );
        assert_eq!(events[0].trace, Some(trace));
        assert_eq!(events[3].trace, Some(trace2));
    }

    #[test]
    fn tcp_propagation_round_trip() {
        let master = master_db();
        let installed: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
        let installed2 = Arc::clone(&installed);
        let server = TcpKpropd::spawn("127.0.0.1:0", string_to_key("mk"), move |entries| {
            *installed2.lock() = entries.len();
            true
        })
        .unwrap();
        let packet = kprop_build(&master).unwrap();
        tcp_kprop_send(server.local_addr, &packet).unwrap();
        assert_eq!(*installed.lock(), 11);
    }

    #[test]
    fn tcp_propagation_rejects_wrong_key() {
        let master = master_db();
        let server = TcpKpropd::spawn("127.0.0.1:0", string_to_key("mk"), |_| true).unwrap();
        let dump = krb_kdb::dump::dump(&master).unwrap();
        let forged = frame(&string_to_key("wrong"), dump.as_bytes());
        assert_eq!(
            tcp_kprop_send(server.local_addr, &forged).unwrap_err(),
            PropError::ChecksumMismatch
        );
    }
}
