//! # krb-nfs — Kerberos applied to Sun's Network File System
//!
//! The appendix of Steiner, Neuman & Schiller (USENIX 1988) as running
//! code: an in-memory [`vfs::Vfs`] standing in for the dedicated
//! fileservers, the modified [`server::NfsServer`] whose per-transaction
//! authentication is a kernel [`credmap::CredMap`] lookup, the modified
//! [`mountd::MountD`] that installs mappings after a Kerberos-moderated
//! mount transaction, and the rejected [`server::FullAuthNfsServer`]
//! baseline (full `krb_rd_req` per operation) that the paper's envelope
//! calculation dismissed as "unacceptable performance" — experiment E13
//! measures both.
//!
//! The appendix's honesty about residual weaknesses is reproduced too:
//! the forgery window while a user is logged in is demonstrated by a test,
//! as is its closure at logout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod credmap;
pub mod mountd;
pub mod server;
pub mod vfs;

pub use credmap::{CredMap, MapKey};
pub use mountd::{MountD, UserTable};
pub use server::{FullAuthNfsServer, NfsOp, NfsReply, NfsServer, NfsStats, ServerPolicy, NOBODY_UID};
pub use vfs::{Ino, Inode, Mode, Vfs, ROOT};

/// An NFS credential: "information about the unique user identifier (UID)
/// of the requester and a list of the group identifiers (GIDs) of the
/// requester's membership."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NfsCredential {
    /// User id.
    pub uid: u32,
    /// Group ids.
    pub gids: Vec<u32>,
}

/// NFS errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsError {
    /// Permission denied (or unfriendly-server unmapped credential).
    Access,
    /// Handle refers to a deleted inode.
    Stale,
    /// Name not found.
    NotFound,
    /// Name already exists.
    Exists,
    /// Directory operation on a file.
    NotDir,
    /// File operation on a directory.
    IsDir,
    /// The principal has no local account (mount mapping failed).
    BadCredential,
    /// Kerberos authentication failed (mount or full-auth path).
    Auth(kerberos::ErrorCode),
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::Access => write!(f, "nfs: access denied"),
            NfsError::Stale => write!(f, "nfs: stale file handle"),
            NfsError::NotFound => write!(f, "nfs: no such entry"),
            NfsError::Exists => write!(f, "nfs: entry exists"),
            NfsError::NotDir => write!(f, "nfs: not a directory"),
            NfsError::IsDir => write!(f, "nfs: is a directory"),
            NfsError::BadCredential => write!(f, "nfs: no local account for principal"),
            NfsError::Auth(e) => write!(f, "nfs: kerberos authentication failed: {e}"),
        }
    }
}

impl std::error::Error for NfsError {}
