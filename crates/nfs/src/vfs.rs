//! An in-memory UNIX-style filesystem: the fileserver's disk.
//!
//! The appendix's fileservers are "VAX 11/750s dedicated to this purpose"
//! holding every user's home directory. This VFS provides the pieces the
//! case study needs: inodes, directories, owner/group/mode bits, and
//! permission checks against an `(uid, gids)` credential.

use crate::{NfsCredential, NfsError};
use std::collections::BTreeMap;

/// Inode number.
pub type Ino = usize;

/// Mode bits: standard `rwxrwxrwx` in the low 9 bits.
pub type Mode = u16;

/// Read permission bit (owner column; shift right by 3/6 for group/other).
pub const R: Mode = 0o4;
/// Write permission bit.
pub const W: Mode = 0o2;
/// Execute/search permission bit.
pub const X: Mode = 0o1;

#[derive(Clone, Debug)]
enum Node {
    File(Vec<u8>),
    Dir(BTreeMap<String, Ino>),
}

/// One inode: data plus ownership and permissions.
#[derive(Clone, Debug)]
pub struct Inode {
    node: Node,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Permission bits (low 9).
    pub mode: Mode,
}

/// The filesystem.
pub struct Vfs {
    inodes: Vec<Option<Inode>>,
}

/// The root directory's inode number.
pub const ROOT: Ino = 0;

impl Vfs {
    /// A filesystem with an empty world-searchable root.
    pub fn new() -> Self {
        Vfs {
            inodes: vec![Some(Inode {
                node: Node::Dir(BTreeMap::new()),
                uid: 0,
                gid: 0,
                mode: 0o755,
            })],
        }
    }

    fn get(&self, ino: Ino) -> Result<&Inode, NfsError> {
        self.inodes.get(ino).and_then(Option::as_ref).ok_or(NfsError::Stale)
    }

    fn get_mut(&mut self, ino: Ino) -> Result<&mut Inode, NfsError> {
        self.inodes.get_mut(ino).and_then(Option::as_mut).ok_or(NfsError::Stale)
    }

    /// Permission check: owner, then group, then other. Uid 0 bypasses
    /// (the fileserver's own superuser).
    fn check(&self, ino: Ino, cred: &NfsCredential, want: Mode) -> Result<(), NfsError> {
        let inode = self.get(ino)?;
        if cred.uid == 0 {
            return Ok(());
        }
        let granted = if cred.uid == inode.uid {
            (inode.mode >> 6) & 0o7
        } else if cred.gids.contains(&inode.gid) {
            (inode.mode >> 3) & 0o7
        } else {
            inode.mode & 0o7
        };
        if granted & want == want {
            Ok(())
        } else {
            Err(NfsError::Access)
        }
    }

    /// Look up `name` in directory `dir` (requires search permission).
    pub fn lookup(&self, dir: Ino, name: &str, cred: &NfsCredential) -> Result<Ino, NfsError> {
        self.check(dir, cred, X)?;
        match &self.get(dir)?.node {
            Node::Dir(entries) => entries.get(name).copied().ok_or(NfsError::NotFound),
            Node::File(_) => Err(NfsError::NotDir),
        }
    }

    /// Resolve a `/`-separated path from the root.
    pub fn resolve(&self, path: &str, cred: &NfsCredential) -> Result<Ino, NfsError> {
        let mut ino = ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            ino = self.lookup(ino, comp, cred)?;
        }
        Ok(ino)
    }

    /// Create a file in `dir` (requires write permission on the directory).
    pub fn create(
        &mut self,
        dir: Ino,
        name: &str,
        mode: Mode,
        cred: &NfsCredential,
    ) -> Result<Ino, NfsError> {
        self.check(dir, cred, W)?;
        let ino = self.alloc(Inode {
            node: Node::File(Vec::new()),
            uid: cred.uid,
            gid: cred.gids.first().copied().unwrap_or(0),
            mode,
        });
        self.link(dir, name, ino)?;
        Ok(ino)
    }

    /// Create a directory in `dir`.
    pub fn mkdir(
        &mut self,
        dir: Ino,
        name: &str,
        mode: Mode,
        cred: &NfsCredential,
    ) -> Result<Ino, NfsError> {
        self.check(dir, cred, W)?;
        let ino = self.alloc(Inode {
            node: Node::Dir(BTreeMap::new()),
            uid: cred.uid,
            gid: cred.gids.first().copied().unwrap_or(0),
            mode,
        });
        self.link(dir, name, ino)?;
        Ok(ino)
    }

    fn alloc(&mut self, inode: Inode) -> Ino {
        self.inodes.push(Some(inode));
        self.inodes.len() - 1
    }

    fn link(&mut self, dir: Ino, name: &str, ino: Ino) -> Result<(), NfsError> {
        match &mut self.get_mut(dir)?.node {
            Node::Dir(entries) => {
                if entries.contains_key(name) {
                    return Err(NfsError::Exists);
                }
                entries.insert(name.to_string(), ino);
                Ok(())
            }
            Node::File(_) => Err(NfsError::NotDir),
        }
    }

    /// Read a byte range from a file (requires read permission).
    pub fn read(
        &self,
        ino: Ino,
        offset: usize,
        len: usize,
        cred: &NfsCredential,
    ) -> Result<Vec<u8>, NfsError> {
        self.check(ino, cred, R)?;
        match &self.get(ino)?.node {
            Node::File(data) => {
                let start = offset.min(data.len());
                let end = (offset + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Node::Dir(_) => Err(NfsError::IsDir),
        }
    }

    /// Write bytes at an offset, extending the file (requires write).
    pub fn write(
        &mut self,
        ino: Ino,
        offset: usize,
        bytes: &[u8],
        cred: &NfsCredential,
    ) -> Result<usize, NfsError> {
        self.check(ino, cred, W)?;
        match &mut self.get_mut(ino)?.node {
            Node::File(data) => {
                if data.len() < offset + bytes.len() {
                    data.resize(offset + bytes.len(), 0);
                }
                data[offset..offset + bytes.len()].copy_from_slice(bytes);
                Ok(bytes.len())
            }
            Node::Dir(_) => Err(NfsError::IsDir),
        }
    }

    /// List a directory (requires read permission on it).
    pub fn readdir(&self, dir: Ino, cred: &NfsCredential) -> Result<Vec<String>, NfsError> {
        self.check(dir, cred, R)?;
        match &self.get(dir)?.node {
            Node::Dir(entries) => Ok(entries.keys().cloned().collect()),
            Node::File(_) => Err(NfsError::NotDir),
        }
    }

    /// Remove an entry (requires write permission on the directory).
    pub fn unlink(&mut self, dir: Ino, name: &str, cred: &NfsCredential) -> Result<(), NfsError> {
        self.check(dir, cred, W)?;
        let ino = match &mut self.get_mut(dir)?.node {
            Node::Dir(entries) => entries.remove(name).ok_or(NfsError::NotFound)?,
            Node::File(_) => return Err(NfsError::NotDir),
        };
        self.inodes[ino] = None;
        Ok(())
    }

    /// Attributes (owner, group, mode, size).
    pub fn getattr(&self, ino: Ino) -> Result<(u32, u32, Mode, usize), NfsError> {
        let inode = self.get(ino)?;
        let size = match &inode.node {
            Node::File(d) => d.len(),
            Node::Dir(e) => e.len(),
        };
        Ok((inode.uid, inode.gid, inode.mode, size))
    }

    /// Build a home directory owned by `uid` at `/<username>` with mode 700
    /// (the appendix's private storage model).
    pub fn provision_home(&mut self, username: &str, uid: u32, gid: u32) -> Result<Ino, NfsError> {
        let root_cred = NfsCredential { uid: 0, gids: vec![0] };
        let home = self.mkdir(ROOT, username, 0o700, &root_cred)?;
        let inode = self.get_mut(home)?;
        inode.uid = uid;
        inode.gid = gid;
        Ok(home)
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(uid: u32) -> NfsCredential {
        NfsCredential { uid, gids: vec![uid] }
    }

    #[test]
    fn home_directory_is_private() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("bcn", 8042, 8042).unwrap();
        let f = fs.create(home, "thesis.tex", 0o600, &cred(8042)).unwrap();
        fs.write(f, 0, b"\\documentclass{article}", &cred(8042)).unwrap();

        // The owner reads their file.
        assert_eq!(
            fs.read(f, 0, 100, &cred(8042)).unwrap(),
            b"\\documentclass{article}"
        );
        // Another user cannot even search the home directory.
        assert_eq!(fs.lookup(home, "thesis.tex", &cred(1234)).unwrap_err(), NfsError::Access);
        // Nor read the file directly by inode.
        assert_eq!(fs.read(f, 0, 100, &cred(1234)).unwrap_err(), NfsError::Access);
    }

    #[test]
    fn group_and_other_permissions() {
        let mut fs = Vfs::new();
        let root_cred = NfsCredential { uid: 0, gids: vec![0] };
        let shared = fs.mkdir(ROOT, "proj", 0o775, &root_cred).unwrap();
        // Make the project dir owned by group 100.
        {
            let inode = fs.get_mut(shared).unwrap();
            inode.uid = 1;
            inode.gid = 100;
        }
        let member = NfsCredential { uid: 2, gids: vec![100] };
        let outsider = NfsCredential { uid: 3, gids: vec![300] };
        assert!(fs.create(shared, "notes", 0o664, &member).is_ok(), "group write");
        assert_eq!(fs.create(shared, "x", 0o664, &outsider).unwrap_err(), NfsError::Access);
        // Other can still list (r-x for other).
        assert!(fs.readdir(shared, &outsider).is_ok());
    }

    #[test]
    fn path_resolution() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("jis", 1001, 1001).unwrap();
        let sub = fs.mkdir(home, "mail", 0o700, &cred(1001)).unwrap();
        fs.create(sub, "inbox", 0o600, &cred(1001)).unwrap();
        let ino = fs.resolve("/jis/mail/inbox", &cred(1001)).unwrap();
        let (uid, _, mode, _) = fs.getattr(ino).unwrap();
        assert_eq!(uid, 1001);
        assert_eq!(mode, 0o600);
        assert_eq!(fs.resolve("/jis/mail/ghost", &cred(1001)).unwrap_err(), NfsError::NotFound);
    }

    #[test]
    fn write_read_offsets() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("u", 5, 5).unwrap();
        let f = fs.create(home, "log", 0o600, &cred(5)).unwrap();
        fs.write(f, 0, b"hello", &cred(5)).unwrap();
        fs.write(f, 5, b" world", &cred(5)).unwrap();
        fs.write(f, 20, b"!", &cred(5)).unwrap();
        let data = fs.read(f, 0, 100, &cred(5)).unwrap();
        assert_eq!(&data[..11], b"hello world");
        assert_eq!(data.len(), 21);
        assert_eq!(fs.read(f, 19, 5, &cred(5)).unwrap(), b"\0!");
    }

    #[test]
    fn unlink_then_stale() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("u", 5, 5).unwrap();
        let f = fs.create(home, "tmp", 0o600, &cred(5)).unwrap();
        fs.unlink(home, "tmp", &cred(5)).unwrap();
        assert_eq!(fs.read(f, 0, 1, &cred(5)).unwrap_err(), NfsError::Stale);
        assert_eq!(fs.unlink(home, "tmp", &cred(5)).unwrap_err(), NfsError::NotFound);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("u", 5, 5).unwrap();
        fs.create(home, "a", 0o600, &cred(5)).unwrap();
        assert_eq!(fs.create(home, "a", 0o600, &cred(5)).unwrap_err(), NfsError::Exists);
    }

    #[test]
    fn root_bypasses_permissions() {
        let mut fs = Vfs::new();
        let home = fs.provision_home("u", 5, 5).unwrap();
        let f = fs.create(home, "private", 0o600, &cred(5)).unwrap();
        let root = NfsCredential { uid: 0, gids: vec![0] };
        assert!(fs.read(f, 0, 1, &root).is_ok());
    }
}
