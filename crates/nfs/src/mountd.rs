//! The modified mount daemon (appendix).
//!
//! "We modified the mount daemon ... to accept a new transaction type, the
//! Kerberos authentication mapping request. Basically, as part of the
//! mounting process, the client system provides a Kerberos authenticator
//! along with an indication of her/his UID-ON-CLIENT (encrypted in the
//! Kerberos authenticator) ... The server's mount daemon converts the
//! Kerberos principal name into a local username. This username is then
//! looked up in a special file to yield the user's UID and GIDs list. ...
//! From this information, an NFS credential is constructed and handed to
//! the kernel as the valid mapping of the <CLIENT-IP-ADDRESS, CLIENT-UID>
//! tuple."
//!
//! The UID-ON-CLIENT rides in the authenticator's checksum field, so it is
//! covered by the session-key encryption exactly as the paper requires.

use crate::credmap::CredMap;
use crate::{NfsCredential, NfsError};
use kerberos::{krb_rd_req, ApReq, ErrorCode, HostAddr, Principal, ReplayCache};
use krb_crypto::DesKey;
use std::collections::HashMap;

/// The mapping-table file: username → (uid, gids). "For efficiency, this
/// file is a ndbm database file with the username as the key."
#[derive(Default, Clone, Debug)]
pub struct UserTable {
    map: HashMap<String, NfsCredential>,
}

impl UserTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a local user.
    pub fn add(&mut self, username: &str, uid: u32, gids: Vec<u32>) {
        self.map.insert(username.to_string(), NfsCredential { uid, gids });
    }

    /// Look up a username.
    pub fn get(&self, username: &str) -> Option<&NfsCredential> {
        self.map.get(username)
    }
}

/// The mount daemon on a fileserver.
pub struct MountD {
    service: Principal,
    service_key: DesKey,
    users: UserTable,
    replay: ReplayCache,
    /// Audit trail of mapping installs: (client, uid_on_client, server_uid).
    pub mappings_installed: Vec<(HostAddr, u32, u32)>,
}

impl MountD {
    /// A mount daemon authenticating as `service` (e.g. `nfs.charon`).
    pub fn new(service: Principal, service_key: DesKey, users: UserTable) -> Self {
        MountD { service, service_key, users, replay: ReplayCache::new(), mappings_installed: Vec::new() }
    }

    /// The Kerberos authentication mapping request: verify and install the
    /// `<CLIENT-IP-ADDRESS, UID-ON-CLIENT> → server credential` mapping.
    pub fn map_request(
        &mut self,
        credmap: &mut CredMap,
        ap: &ApReq,
        sender: HostAddr,
        now: u32,
    ) -> Result<NfsCredential, NfsError> {
        let verified = krb_rd_req(ap, &self.service, &self.service_key, sender, now, &mut self.replay)
            .map_err(NfsError::Auth)?;
        // The principal name maps to the local username; the instance must
        // be empty (users, not services, mount home directories) and the
        // realm is subject to local policy — we accept only our own realm.
        if !verified.client.instance.is_empty() || verified.client.realm != self.service.realm {
            return Err(NfsError::Auth(ErrorCode::KadmUnauth));
        }
        let uid_on_client = verified.cksum;
        let cred = self
            .users
            .get(&verified.client.name)
            .cloned()
            .ok_or(NfsError::BadCredential)?;
        credmap.add(sender, uid_on_client, cred.clone());
        self.mappings_installed.push((sender, uid_on_client, cred.uid));
        Ok(cred)
    }

    /// Unmount: "At unmount time a request is sent to the mount daemon to
    /// remove the previously added mapping from the kernel."
    pub fn unmount(&mut self, credmap: &mut CredMap, client: HostAddr, uid_on_client: u32) -> bool {
        credmap.del(client, uid_on_client)
    }

    /// Logout cleanup: "invalidate all mapping for the current user on the
    /// server in question."
    pub fn logout(&mut self, credmap: &mut CredMap, server_uid: u32) -> usize {
        credmap.flush_uid(server_uid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NfsOp, NfsReply, NfsServer, ServerPolicy, NOBODY_UID};
    use crate::vfs::Vfs;
    use kerberos::{krb_mk_req, Ticket};
    use krb_crypto::string_to_key;

    const REALM: &str = "ATHENA.MIT.EDU";
    const WS: HostAddr = [18, 72, 0, 5];
    const NOW: u32 = 600_000_000;

    fn setup() -> (MountD, NfsServer, ApReq, Principal) {
        let mut users = UserTable::new();
        users.add("bcn", 8042, vec![8042, 100]);
        let nfs_svc = Principal::parse("nfs.charon", REALM).unwrap();
        let nfs_key = string_to_key("nfs-charon-srvtab");
        let mountd = MountD::new(nfs_svc.clone(), nfs_key, users);

        let mut vfs = Vfs::new();
        vfs.provision_home("bcn", 8042, 8042).unwrap();
        let server = NfsServer::new(vfs, ServerPolicy::Friendly);

        // The client's ticket for the NFS service (normally via TGS).
        let client = Principal::parse("bcn", REALM).unwrap();
        let session = string_to_key("mount-session");
        let ticket = Ticket::new(&nfs_svc, &client, WS, NOW, 96, *session.as_bytes())
            .seal(&string_to_key("nfs-charon-srvtab"));
        // UID-ON-CLIENT = 500, carried encrypted inside the authenticator.
        let ap = krb_mk_req(&ticket, REALM, &session, &client, WS, NOW, 500, false);
        (mountd, server, ap, client)
    }

    #[test]
    fn mount_installs_mapping_and_files_flow() {
        let (mut mountd, mut server, ap, _) = setup();
        let cred = mountd.map_request(&mut server.credmap, &ap, WS, NOW).unwrap();
        assert_eq!(cred.uid, 8042);
        assert_eq!(server.credmap.len(), 1);

        // Now NFS ops from (WS, uid 500) act as server uid 8042.
        let client_cred = NfsCredential { uid: 500, gids: vec![500] };
        let home = match server.handle(WS, &client_cred, &NfsOp::Lookup(crate::vfs::ROOT, "bcn".into())) {
            Ok(NfsReply::Handle(h)) => h,
            other => panic!("lookup failed: {other:?}"),
        };
        let f = match server.handle(WS, &client_cred, &NfsOp::Create(home, "notes".into(), 0o600)) {
            Ok(NfsReply::Handle(h)) => h,
            other => panic!("create failed: {other:?}"),
        };
        assert!(matches!(
            server.handle(WS, &client_cred, &NfsOp::Write(f, 0, b"hi".to_vec())),
            Ok(NfsReply::Written(2))
        ));
    }

    #[test]
    fn unmapped_request_is_nobody_on_friendly_server() {
        let (_, mut server, _, _) = setup();
        let stranger = NfsCredential { uid: 777, gids: vec![777] };
        // Root dir is world-searchable, so lookup succeeds as nobody...
        assert!(server.handle(WS, &stranger, &NfsOp::Lookup(crate::vfs::ROOT, "bcn".into())).is_ok());
        // ...but reading the 700 home directory fails: nobody has no access.
        let home = 1; // first provisioned inode
        assert!(matches!(
            server.handle(WS, &stranger, &NfsOp::Readdir(home)),
            Err(NfsError::Access)
        ));
        assert_eq!(server.stats.unmapped, 2);
        let _ = NOBODY_UID;
    }

    #[test]
    fn unmapped_request_errors_on_unfriendly_server() {
        let (_, _, _, _) = setup();
        let mut server = NfsServer::new(Vfs::new(), ServerPolicy::Unfriendly);
        let stranger = NfsCredential { uid: 777, gids: vec![777] };
        assert!(matches!(
            server.handle(WS, &stranger, &NfsOp::Readdir(crate::vfs::ROOT)),
            Err(NfsError::Access)
        ));
    }

    #[test]
    fn forged_credential_fails_when_user_not_logged_in() {
        // "When a user is not logged in, no amount of IP address forgery
        // will permit unauthorized access to her/his files."
        let (mut mountd, mut server, ap, _) = setup();
        let cred = mountd.map_request(&mut server.credmap, &ap, WS, NOW).unwrap();
        // Logout: flush mappings.
        assert_eq!(mountd.logout(&mut server.credmap, cred.uid), 1);
        let forged = NfsCredential { uid: 500, gids: vec![500] };
        let home = 1;
        assert!(matches!(
            server.handle(WS, &forged, &NfsOp::Readdir(home)),
            Err(NfsError::Access)
        ));
    }

    #[test]
    fn forgery_window_exists_while_logged_in() {
        // The appendix is explicit that "this implementation is not
        // completely secure": while the user is logged in, forging
        // <CLIENT-IP, UID> grants their access. Demonstrate the documented
        // limitation — the E13 companion test.
        let (mut mountd, mut server, ap, _) = setup();
        mountd.map_request(&mut server.credmap, &ap, WS, NOW).unwrap();
        // Attacker forges the client address + uid (spoofed packet).
        let forged = NfsCredential { uid: 500, gids: vec![] };
        let home = 1;
        assert!(
            server.handle(WS, &forged, &NfsOp::Readdir(home)).is_ok(),
            "documented forgery window while mapping is live"
        );
    }

    #[test]
    fn unknown_principal_cannot_mount() {
        let (mut mountd, mut server, _, _) = setup();
        let ghost = Principal::parse("ghost", REALM).unwrap();
        let session = string_to_key("s2");
        let nfs_svc = Principal::parse("nfs.charon", REALM).unwrap();
        let ticket = Ticket::new(&nfs_svc, &ghost, WS, NOW, 96, *session.as_bytes())
            .seal(&string_to_key("nfs-charon-srvtab"));
        let ap = krb_mk_req(&ticket, REALM, &session, &ghost, WS, NOW, 500, false);
        assert!(matches!(
            mountd.map_request(&mut server.credmap, &ap, WS, NOW),
            Err(NfsError::BadCredential)
        ));
        assert!(server.credmap.is_empty());
    }

    #[test]
    fn replayed_mount_request_rejected() {
        let (mut mountd, mut server, ap, _) = setup();
        mountd.map_request(&mut server.credmap, &ap, WS, NOW).unwrap();
        assert!(matches!(
            mountd.map_request(&mut server.credmap, &ap, WS, NOW + 1),
            Err(NfsError::Auth(ErrorCode::RdApRepeat))
        ));
    }

    #[test]
    fn unmount_removes_exactly_one_mapping() {
        let (mut mountd, mut server, ap, _) = setup();
        mountd.map_request(&mut server.credmap, &ap, WS, NOW).unwrap();
        assert!(mountd.unmount(&mut server.credmap, WS, 500));
        assert!(!mountd.unmount(&mut server.credmap, WS, 500));
        assert!(server.credmap.is_empty());
    }
}
