//! The modified NFS server of the appendix, plus the rejected
//! full-authentication baseline it was measured against.
//!
//! Modified NFS: "NFS servers must accept credentials from a workstation
//! if and only if the credentials indicate the UID of the workstation's
//! user, and no other." Each request's credential is translated through
//! the kernel [`CredMap`]; unmapped requests become "nobody" on friendly
//! servers or an access error on unfriendly ones.
//!
//! Baseline: "One obvious solution would be to change the nature of
//! credentials ... to full blown Kerberos authenticated data. However a
//! significant performance penalty would be paid ... Credentials are
//! exchanged on every NFS operation including all disk read and write
//! activities." [`FullAuthNfsServer`] implements that rejected design so
//! E13 can measure the penalty.

use crate::credmap::CredMap;
use crate::vfs::{Ino, Mode, Vfs};
use crate::{NfsCredential, NfsError};
use kerberos::{krb_rd_req, ApReq, DEFAULT_SERVICE_LIFE};
use kerberos::{HostAddr, Principal, ReplayCache};
use krb_crypto::DesKey;

/// The uid of the anonymous "nobody" user ("who has no privileged access
/// and has a unique UID").
pub const NOBODY_UID: u32 = 65534;

/// How unmapped requests are treated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerPolicy {
    /// "In our friendly configuration we default the unmappable requests
    /// into the credentials for the user 'nobody'."
    Friendly,
    /// "Unfriendly servers return an NFS access error."
    Unfriendly,
}

/// One NFS operation, as carried in a request packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsOp {
    /// Resolve a name in a directory.
    Lookup(Ino, String),
    /// Read a byte range.
    Read(Ino, usize, usize),
    /// Write bytes at an offset.
    Write(Ino, usize, Vec<u8>),
    /// Create a file.
    Create(Ino, String, Mode),
    /// Make a directory.
    Mkdir(Ino, String, Mode),
    /// List a directory.
    Readdir(Ino),
    /// Remove an entry.
    Remove(Ino, String),
    /// Get attributes.
    Getattr(Ino),
}

/// Result payload of an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsReply {
    /// An inode handle.
    Handle(Ino),
    /// File bytes.
    Data(Vec<u8>),
    /// Bytes written.
    Written(usize),
    /// Directory listing.
    Names(Vec<String>),
    /// (uid, gid, mode, size).
    Attr(u32, u32, Mode, usize),
    /// Operation succeeded with no payload.
    Done,
}

/// Per-server counters (E13 reads these).
#[derive(Default, Debug, Clone, Copy)]
pub struct NfsStats {
    /// Operations processed.
    pub ops: u64,
    /// Operations whose credential mapped.
    pub mapped: u64,
    /// Operations that fell through to nobody / access error.
    pub unmapped: u64,
}

/// The appendix's modified NFS server.
pub struct NfsServer {
    /// The exported filesystem.
    pub vfs: Vfs,
    /// The kernel credential map.
    pub credmap: CredMap,
    /// Friendly or unfriendly.
    pub policy: ServerPolicy,
    /// Counters.
    pub stats: NfsStats,
}

impl NfsServer {
    /// A server exporting `vfs` under the given policy.
    pub fn new(vfs: Vfs, policy: ServerPolicy) -> Self {
        NfsServer { vfs, credmap: CredMap::new(), policy, stats: NfsStats::default() }
    }

    /// Handle one NFS transaction.
    ///
    /// "The CLIENT-IP-ADDRESS is extracted from the NFS request packet and
    /// the UID-ON-CLIENT is extracted from the credential supplied by the
    /// client system. Note: all information in the client-generated
    /// credential except the UID-ON-CLIENT is discarded."
    pub fn handle(
        &mut self,
        client_addr: HostAddr,
        client_cred: &NfsCredential,
        op: &NfsOp,
    ) -> Result<NfsReply, NfsError> {
        self.stats.ops += 1;
        let effective = match self.credmap.lookup(client_addr, client_cred.uid) {
            Some(mapped) => {
                self.stats.mapped += 1;
                mapped.clone()
            }
            None => {
                self.stats.unmapped += 1;
                match self.policy {
                    ServerPolicy::Friendly => NfsCredential { uid: NOBODY_UID, gids: vec![NOBODY_UID] },
                    ServerPolicy::Unfriendly => return Err(NfsError::Access),
                }
            }
        };
        self.execute(&effective, op)
    }

    fn execute(&mut self, cred: &NfsCredential, op: &NfsOp) -> Result<NfsReply, NfsError> {
        match op {
            NfsOp::Lookup(dir, name) => Ok(NfsReply::Handle(self.vfs.lookup(*dir, name, cred)?)),
            NfsOp::Read(ino, off, len) => Ok(NfsReply::Data(self.vfs.read(*ino, *off, *len, cred)?)),
            NfsOp::Write(ino, off, data) => {
                Ok(NfsReply::Written(self.vfs.write(*ino, *off, data, cred)?))
            }
            NfsOp::Create(dir, name, mode) => {
                Ok(NfsReply::Handle(self.vfs.create(*dir, name, *mode, cred)?))
            }
            NfsOp::Mkdir(dir, name, mode) => {
                Ok(NfsReply::Handle(self.vfs.mkdir(*dir, name, *mode, cred)?))
            }
            NfsOp::Readdir(dir) => Ok(NfsReply::Names(self.vfs.readdir(*dir, cred)?)),
            NfsOp::Remove(dir, name) => {
                self.vfs.unlink(*dir, name, cred)?;
                Ok(NfsReply::Done)
            }
            NfsOp::Getattr(ino) => {
                let (uid, gid, mode, size) = self.vfs.getattr(*ino)?;
                Ok(NfsReply::Attr(uid, gid, mode, size))
            }
        }
    }
}

/// The rejected baseline: full Kerberos authentication on every NFS
/// transaction. Each request carries an `AP_REQ` whose authenticator must
/// be fresh and unreplayed; the server runs `krb_rd_req` — "a fair number
/// of full-blown encryptions (done in software) per transaction".
pub struct FullAuthNfsServer {
    /// The exported filesystem.
    pub vfs: Vfs,
    service: Principal,
    service_key: DesKey,
    replay: ReplayCache,
    /// username -> server credential, the same special file mountd uses.
    user_table: std::collections::HashMap<String, NfsCredential>,
    /// Counters.
    pub stats: NfsStats,
}

impl FullAuthNfsServer {
    /// A full-auth server for `service` with its srvtab key.
    pub fn new(vfs: Vfs, service: Principal, service_key: DesKey) -> Self {
        FullAuthNfsServer {
            vfs,
            service,
            service_key,
            replay: ReplayCache::new(),
            user_table: std::collections::HashMap::new(),
            stats: NfsStats::default(),
        }
    }

    /// Register a username → server-credential mapping.
    pub fn add_user(&mut self, username: &str, cred: NfsCredential) {
        self.user_table.insert(username.to_string(), cred);
    }

    /// Handle one transaction: verify the per-op `AP_REQ`, then execute.
    pub fn handle(
        &mut self,
        client_addr: HostAddr,
        ap: &ApReq,
        now: u32,
        op: &NfsOp,
    ) -> Result<NfsReply, NfsError> {
        self.stats.ops += 1;
        let verified = krb_rd_req(ap, &self.service, &self.service_key, client_addr, now, &mut self.replay)
            .map_err(NfsError::Auth)?;
        let cred = self
            .user_table
            .get(&verified.client.name)
            .cloned()
            .ok_or(NfsError::Access)?;
        self.stats.mapped += 1;
        // Reuse the mapped server's execute logic via a scratch NfsServer
        // shape: the VFS call is identical.
        match op {
            NfsOp::Lookup(dir, name) => Ok(NfsReply::Handle(self.vfs.lookup(*dir, name, &cred)?)),
            NfsOp::Read(ino, off, len) => Ok(NfsReply::Data(self.vfs.read(*ino, *off, *len, &cred)?)),
            NfsOp::Write(ino, off, data) => {
                Ok(NfsReply::Written(self.vfs.write(*ino, *off, data, &cred)?))
            }
            NfsOp::Create(dir, name, mode) => {
                Ok(NfsReply::Handle(self.vfs.create(*dir, name, *mode, &cred)?))
            }
            NfsOp::Mkdir(dir, name, mode) => {
                Ok(NfsReply::Handle(self.vfs.mkdir(*dir, name, *mode, &cred)?))
            }
            NfsOp::Readdir(dir) => Ok(NfsReply::Names(self.vfs.readdir(*dir, &cred)?)),
            NfsOp::Remove(dir, name) => {
                self.vfs.unlink(*dir, name, &cred)?;
                Ok(NfsReply::Done)
            }
            NfsOp::Getattr(ino) => {
                let (uid, gid, mode, size) = self.vfs.getattr(*ino)?;
                Ok(NfsReply::Attr(uid, gid, mode, size))
            }
        }
    }

    /// Lifetime the client should request for its per-op tickets.
    pub fn suggested_ticket_life() -> u8 {
        DEFAULT_SERVICE_LIFE
    }
}
