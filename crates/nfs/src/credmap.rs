//! The kernel-resident credential map and its control "system call".
//!
//! Appendix, Modified NFS: "we added a new system call to the kernel
//! (required only on server systems ...) that provides for the control of
//! the mapping function that maps incoming credentials from client
//! workstations to credentials valid for use on the server. ... The basic
//! mapping function maps the tuple `<CLIENT-IP-ADDRESS, UID-ON-CLIENT>` to
//! a valid NFS credential on the server system."
//!
//! "Our new system call is used to add and delete entries from the kernel
//! resident map. It also provides the ability to flush all entries that
//! map to a specific UID on the server system, or flush all entries from a
//! given CLIENT-IP-ADDRESS."

use crate::NfsCredential;
use kerberos::HostAddr;
use std::collections::HashMap;

/// The mapping key: client host plus the uid claimed on that host.
pub type MapKey = (HostAddr, u32);

/// The kernel map. Lookup happens "in the server's kernel on each NFS
/// transaction" — it must be (and is) a hash lookup, which is the entire
/// performance argument of the appendix (experiment E13).
#[derive(Default, Debug, Clone)]
pub struct CredMap {
    map: HashMap<MapKey, NfsCredential>,
}

impl CredMap {
    /// An empty map (fresh boot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Syscall op: install a mapping (done by the mount daemon after a
    /// successful Kerberos mapping transaction).
    pub fn add(&mut self, client: HostAddr, uid_on_client: u32, server_cred: NfsCredential) {
        self.map.insert((client, uid_on_client), server_cred);
    }

    /// Syscall op: delete one mapping (unmount time).
    pub fn del(&mut self, client: HostAddr, uid_on_client: u32) -> bool {
        self.map.remove(&(client, uid_on_client)).is_some()
    }

    /// Syscall op: flush all entries mapping to a given *server* uid
    /// (log-out time, "cleaning up any remaining mappings").
    pub fn flush_uid(&mut self, server_uid: u32) -> usize {
        let before = self.map.len();
        self.map.retain(|_, v| v.uid != server_uid);
        before - self.map.len()
    }

    /// Syscall op: flush all entries from a client address (workstation
    /// returned to the pool).
    pub fn flush_addr(&mut self, client: HostAddr) -> usize {
        let before = self.map.len();
        self.map.retain(|(a, _), _| *a != client);
        before - self.map.len()
    }

    /// The per-transaction kernel lookup.
    pub fn lookup(&self, client: HostAddr, uid_on_client: u32) -> Option<&NfsCredential> {
        self.map.get(&(client, uid_on_client))
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WS1: HostAddr = [18, 72, 0, 5];
    const WS2: HostAddr = [18, 72, 0, 6];

    fn cred(uid: u32) -> NfsCredential {
        NfsCredential { uid, gids: vec![uid, 100] }
    }

    #[test]
    fn add_lookup_del() {
        let mut m = CredMap::new();
        m.add(WS1, 500, cred(8042));
        assert_eq!(m.lookup(WS1, 500).unwrap().uid, 8042);
        assert!(m.lookup(WS1, 501).is_none(), "different client uid");
        assert!(m.lookup(WS2, 500).is_none(), "different host");
        assert!(m.del(WS1, 500));
        assert!(!m.del(WS1, 500));
        assert!(m.is_empty());
    }

    #[test]
    fn mapping_can_translate_uids() {
        // "a valid (and possibly different) credential on the server".
        let mut m = CredMap::new();
        m.add(WS1, 0, cred(8042)); // root on the workstation is just bcn here
        assert_eq!(m.lookup(WS1, 0).unwrap().uid, 8042);
    }

    #[test]
    fn flush_uid_clears_all_of_a_users_mappings() {
        let mut m = CredMap::new();
        m.add(WS1, 500, cred(8042));
        m.add(WS2, 777, cred(8042));
        m.add(WS1, 501, cred(9999));
        assert_eq!(m.flush_uid(8042), 2);
        assert_eq!(m.len(), 1);
        assert!(m.lookup(WS1, 501).is_some());
    }

    #[test]
    fn flush_addr_clears_a_workstation() {
        let mut m = CredMap::new();
        m.add(WS1, 500, cred(1));
        m.add(WS1, 501, cred(2));
        m.add(WS2, 500, cred(3));
        assert_eq!(m.flush_addr(WS1), 2);
        assert_eq!(m.len(), 1);
        assert!(m.lookup(WS2, 500).is_some());
    }
}
