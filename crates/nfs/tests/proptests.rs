//! Model-based property tests: the kernel credential map must agree with
//! a reference HashMap under arbitrary syscall sequences, and the VFS
//! permission check must be exactly the UNIX rwx rule.

use krb_nfs::{CredMap, NfsCredential, NfsError, Vfs, ROOT};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MapOp {
    Add([u8; 4], u32, u32),
    Del([u8; 4], u32),
    FlushUid(u32),
    FlushAddr([u8; 4]),
    Lookup([u8; 4], u32),
}

fn arb_addr() -> impl Strategy<Value = [u8; 4]> {
    (0u8..3).prop_map(|x| [10, 0, 0, x])
}

fn arb_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (arb_addr(), 0u32..4, 100u32..104).prop_map(|(a, u, s)| MapOp::Add(a, u, s)),
        (arb_addr(), 0u32..4).prop_map(|(a, u)| MapOp::Del(a, u)),
        (100u32..104).prop_map(MapOp::FlushUid),
        arb_addr().prop_map(MapOp::FlushAddr),
        (arb_addr(), 0u32..4).prop_map(|(a, u)| MapOp::Lookup(a, u)),
    ]
}

proptest! {
    #[test]
    fn credmap_matches_model(ops in proptest::collection::vec(arb_op(), 0..150)) {
        let mut map = CredMap::new();
        let mut model: HashMap<([u8; 4], u32), u32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Add(a, u, s) => {
                    map.add(a, u, NfsCredential { uid: s, gids: vec![s] });
                    model.insert((a, u), s);
                }
                MapOp::Del(a, u) => {
                    let was = map.del(a, u);
                    prop_assert_eq!(was, model.remove(&(a, u)).is_some());
                }
                MapOp::FlushUid(s) => {
                    let n = map.flush_uid(s);
                    let before = model.len();
                    model.retain(|_, v| *v != s);
                    prop_assert_eq!(n, before - model.len());
                }
                MapOp::FlushAddr(a) => {
                    let n = map.flush_addr(a);
                    let before = model.len();
                    model.retain(|(ad, _), _| *ad != a);
                    prop_assert_eq!(n, before - model.len());
                }
                MapOp::Lookup(a, u) => {
                    prop_assert_eq!(
                        map.lookup(a, u).map(|c| c.uid),
                        model.get(&(a, u)).copied()
                    );
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
    }

    /// The read-permission rule: read succeeds iff the matching rwx column
    /// grants it (owner first, then group, then other; uid 0 bypasses).
    #[test]
    fn vfs_read_permission_truth_table(
        mode in 0u16..0o1000,
        file_uid in 1u32..4,
        file_gid in 100u32..103,
        cred_uid in prop_oneof![Just(0u32), 1u32..5],
        cred_gid in 100u32..104,
    ) {
        let root_cred = NfsCredential { uid: 0, gids: vec![0] };
        let mut fs = Vfs::new();
        // Root creates a world-writable staging dir so the owner can create
        // the file under their own uid/gid.
        let dir = fs.mkdir(ROOT, "d", 0o777, &root_cred).unwrap();
        let owner = NfsCredential { uid: file_uid, gids: vec![file_gid] };
        let ino = fs.create(dir, "f", mode, &owner).unwrap();

        let cred = NfsCredential { uid: cred_uid, gids: vec![cred_gid] };
        let expected = if cred_uid == 0 {
            true
        } else if cred_uid == file_uid {
            mode >> 6 & 0o4 != 0
        } else if cred_gid == file_gid {
            mode >> 3 & 0o4 != 0
        } else {
            mode & 0o4 != 0
        };
        match (expected, fs.read(ino, 0, 1, &cred)) {
            (true, Ok(_)) => {}
            (false, Err(NfsError::Access)) => {}
            (e, g) => prop_assert!(false, "mode {mode:o}: expected allow={e}, got {g:?}"),
        }
    }
}
