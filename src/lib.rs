//! # athena-kerberos
//!
//! Umbrella crate for the reproduction of Steiner, Neuman and Schiller,
//! *Kerberos: An Authentication Service for Open Network Systems*
//! (USENIX Winter 1988, Project Athena, MIT).
//!
//! Each component of Figure 1 of the paper lives in its own crate; this
//! crate re-exports them under stable names so examples and integration
//! tests can reach the whole system through one dependency.
//!
//! | module | paper component |
//! |--------|-----------------|
//! | [`crypto`] | encryption library (DES, CBC/PCBC, string-to-key, quad_cksum) |
//! | [`kdb`] | database library (ndbm-style store, principal database) |
//! | [`krb`] | Kerberos applications library (tickets, authenticators, exchanges) |
//! | [`netsim`] | network substrate (simulated datagram network + UDP) |
//! | [`kdc`] | authentication server (AS + TGS) |
//! | [`kadm`] | administration server (KDBM), `kadmin`, `kpasswd` |
//! | [`kprop`] | database propagation (`kprop`/`kpropd`) |
//! | [`tools`] | user programs (`kinit`, `klist`, `kdestroy`, ...) |
//! | [`hesiod`] | Hesiod nameserver |
//! | [`nfs`] | Kerberized Sun NFS case study (appendix) |
//! | [`apps`] | Kerberized applications (`rlogin`, POP, Zephyr, `register`) |
//! | [`sim`] | Athena environment simulator |
//! | [`adversary`] | seeded Dolev–Yao active attacker with secrecy/authentication oracles |
//! | [`mon`] | live introspection plane (`MonService` frames, consistency oracle) |

#![forbid(unsafe_code)]

pub use kerberos as krb;
pub use krb_adversary as adversary;
pub use krb_apps as apps;
pub use krb_crypto as crypto;
pub use krb_hesiod as hesiod;
pub use krb_kadm as kadm;
pub use krb_kdb as kdb;
pub use krb_kdc as kdc;
pub use krb_kprop as kprop;
pub use krb_mon as mon;
pub use krb_netsim as netsim;
pub use krb_nfs as nfs;
pub use krb_sim as sim;
pub use krb_telemetry as telemetry;
pub use krb_tools as tools;
