//! The adversary suite (paper §1's security requirement, §4.3's replay
//! handling, the appendix's honesty about NFS): every attack the paper
//! discusses, scripted against the real stack on the open simulated
//! network.

use athena_kerberos::krb::{ErrorCode, ReplayCache, MAX_SKEW_SECS};
use athena_kerberos::sim::{replay_captured_ap, rig, wire_contains, AttackOutcome};

#[test]
fn eavesdropper_learns_no_secrets_from_a_full_session() {
    // §1: "Someone watching the network should not be able to obtain the
    // information necessary to impersonate another user."
    let mut r = rig(1000);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let (_, cred) = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();

    assert!(!wire_contains(&r, b"victim-pw"));
    assert!(!wire_contains(&r, athena_kerberos::crypto::string_to_key("victim-pw").as_bytes()));
    assert!(!wire_contains(&r, cred.session_key.as_bytes()));
    assert!(!wire_contains(&r, r.service_key.as_bytes()));
    // The TGT session key too.
    let tgt = r.workstation.cache.tgt("ATHENA.MIT.EDU", r.workstation.now()).unwrap();
    assert!(!wire_contains(&r, tgt.session_key.as_bytes()));
}

#[test]
fn password_guessing_without_the_wire_is_the_only_option_left() {
    // The AS reply is the only thing a passive attacker can attack: it is
    // encrypted in the user's key. A guessed wrong password fails cleanly.
    let mut r = rig(1001);
    assert!(r.workstation.kinit(&mut r.router, "victim", "letmein").is_err());
    assert!(r.workstation.kinit(&mut r.router, "victim", "victim-pw").is_ok());
}

#[test]
fn replay_rejected_same_address() {
    let mut r = rig(1002);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let _ = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let now = r.workstation.now();
    let mut rc = ReplayCache::new();
    assert_eq!(replay_captured_ap(&mut r, &mut rc, [18, 72, 3, 100], now), AttackOutcome::Succeeded);
    assert_eq!(
        replay_captured_ap(&mut r, &mut rc, [18, 72, 3, 100], now),
        AttackOutcome::Rejected(ErrorCode::RdApRepeat)
    );
}

#[test]
fn stolen_credentials_useless_from_attacker_host() {
    // The ticket names the victim's address; presenting it from another
    // address fails even if the replay cache were empty.
    let mut r = rig(1003);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let _ = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let now = r.workstation.now();
    let mut fresh_cache = ReplayCache::new();
    assert_eq!(
        replay_captured_ap(&mut r, &mut fresh_cache, [10, 66, 6, 6], now),
        AttackOutcome::Rejected(ErrorCode::RdApBadAddr)
    );
}

#[test]
fn old_captures_die_at_the_skew_horizon() {
    // §4.3: "If the time in the request is too far in the future or the
    // past, the server treats the request as an attempt to replay."
    let mut r = rig(1004);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let _ = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let later = r.workstation.now() + MAX_SKEW_SECS + 1;
    let mut rc = ReplayCache::new();
    assert_eq!(
        replay_captured_ap(&mut r, &mut rc, [18, 72, 3, 100], later),
        AttackOutcome::Rejected(ErrorCode::RdApTime)
    );
}

#[test]
fn spoofed_source_cannot_harvest_usable_as_replies() {
    // An attacker asks the AS for the victim's TGT with a spoofed source.
    // The network delivers the reply to the *spoofed* (victim's) address —
    // and even if the attacker could see it, it is sealed in the victim's
    // password-derived key. The attacker with a wrong password gets
    // nothing usable.
    let mut r = rig(1005);
    let client = athena_kerberos::krb::Principal::parse("victim", "ATHENA.MIT.EDU").unwrap();
    let tgs = athena_kerberos::krb::Principal::tgs("ATHENA.MIT.EDU", "ATHENA.MIT.EDU");
    let now = r.workstation.now();
    let req = athena_kerberos::krb::build_as_req(&client, &tgs, 96, now);

    // The attacker sends from their own endpoint and DOES get a reply
    // (the AS answers anyone — that is by design).
    let attacker_ep = athena_kerberos::netsim::Endpoint::new([10, 66, 6, 6], 4242);
    let kdc_ep = r.dep.kdc_endpoints()[0];
    let reply = r.router.rpc(attacker_ep, kdc_ep, &req).unwrap();
    // But it is useless without the password:
    assert_eq!(
        athena_kerberos::krb::read_as_reply_with_password(&reply, "not-the-password", now)
            .unwrap_err(),
        ErrorCode::IntkBadPw
    );
    // ...and worse for the attacker, the ticket inside names THEIR address
    // (the AS binds the ticket to the request's source), so even the real
    // user key wouldn't let them impersonate from elsewhere.
}

#[test]
fn fast_and_slow_clocks_break_authentication() {
    // §4.3: "It is assumed that clocks are synchronized to within several
    // minutes." A workstation drifted past the window cannot authenticate.
    use athena_kerberos::krb::krb_rd_req;
    let mut r = rig(1006);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _) = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();

    // The server's clock is 10 minutes ahead of the workstation's.
    let server_now = r.workstation.now() + 600;
    let mut rc = ReplayCache::new();
    assert_eq!(
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], server_now, &mut rc).unwrap_err(),
        ErrorCode::RdApTime
    );
    // Within the window, fine.
    let server_now = r.workstation.now() + 250;
    assert!(krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], server_now, &mut rc).is_ok());
}

#[test]
fn expired_session_leaves_nothing_usable() {
    // §4.2: "no information exists that will allow someone else to
    // impersonate the user beyond the life of the ticket."
    use athena_kerberos::krb::krb_rd_req;
    let mut r = rig(1007);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _) = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();

    // 9 hours later the stolen ticket (8h life) is dead even with a
    // freshly forged time-stamp-free replay attempt.
    let later = r.workstation.now() + 9 * 3600;
    let mut rc = ReplayCache::new();
    let err = krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], later, &mut rc).unwrap_err();
    assert!(
        err == ErrorCode::RdApExp || err == ErrorCode::RdApTime,
        "stale credentials must fail: {err:?}"
    );
}

#[test]
fn replay_exactly_at_the_skew_edge_is_caught_by_the_cache_not_the_clock() {
    // §4.3's two replay defences meet at `timestamp + MAX_SKEW_SECS`: an
    // authenticator aged exactly the skew window is still *fresh* (the
    // clock check uses <=), so only the replay cache stands between the
    // attacker and the service. A time-shifting attacker who replays at
    // the precise edge must be rejected as a repeat, not misdiagnosed as
    // merely stale — the distinction matters because a cache that leaned
    // on the freshness check at the boundary would admit the replay.
    use athena_kerberos::krb::krb_rd_req;
    let mut r = rig(1008);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _) = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();

    let mut rc = ReplayCache::new();
    let first =
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], r.workstation.now(), &mut rc)
            .unwrap();
    // Derive the edge from the authenticator itself, not the wall clock.
    let edge = first.timestamp + MAX_SKEW_SECS;
    assert_eq!(
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], edge, &mut rc).unwrap_err(),
        ErrorCode::RdApRepeat,
        "at the exact skew edge the cache, not the clock, must reject"
    );
    assert_eq!(rc.replay_hits(), 1);
    // One second past the edge the freshness check takes over — even a
    // server that lost its cache (fresh `ReplayCache`) stays safe.
    let mut amnesiac = ReplayCache::new();
    assert_eq!(
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], edge + 1, &mut amnesiac)
            .unwrap_err(),
        ErrorCode::RdApTime
    );
}

#[test]
fn replay_after_cache_eviction_is_stopped_by_the_freshness_check() {
    // §4.2/§4.3: the cache only needs to remember "past requests with time
    // stamps that are still valid" — entries past the purge horizon are
    // evicted to keep the cache bounded, and that is *safe* because any
    // authenticator old enough to have been evicted is also old enough to
    // fail the clock-skew check. This test documents the §4.2 lifetime
    // window: eviction really happens, and the evicted replay is still
    // refused.
    use athena_kerberos::krb::replay::hash_bytes;
    use athena_kerberos::krb::{krb_rd_req, ReplayKey};
    let mut r = rig(1009);
    r.workstation.kinit(&mut r.router, "victim", "victim-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _) = r.workstation.mk_request(&mut r.router, &svc, 0, false).unwrap();

    let mut rc = ReplayCache::new();
    let first =
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], r.workstation.now(), &mut rc)
            .unwrap();
    assert_eq!(rc.len(), 1);

    // Time passes beyond the 2×skew purge horizon; the next request (any
    // request — here an unrelated client) triggers the sweep.
    let late = first.timestamp + 2 * MAX_SKEW_SECS + 1;
    let unrelated = ReplayKey {
        client: "other.@ATHENA.MIT.EDU".into(),
        timestamp: late,
        auth_hash: hash_bytes(b"unrelated authenticator"),
    };
    assert!(rc.check_and_insert(unrelated, late));
    assert_eq!(rc.evictions(), 1, "the victim's entry must age out");
    assert_eq!(rc.len(), 1, "only the fresh entry survives the purge");

    // The attacker's held-back replay no longer matches anything in the
    // cache — and is rejected anyway, by the clock.
    assert_eq!(
        krb_rd_req(&ap, &svc, &r.service_key, [18, 72, 3, 100], late, &mut rc).unwrap_err(),
        ErrorCode::RdApTime,
        "eviction is safe: freshness backstops the bounded cache"
    );
    assert_eq!(rc.replay_hits(), 0, "the cache never even sees the stale replay");
}
