//! The production configuration: a KDC over the *file-backed* extendible
//! hash store (the `ndbm` role), not the in-memory store the simulators
//! use. Exercises the full §6.3 administrator flow against real files:
//! initialize, register, serve, dump, and reopen after a restart.

use athena_kerberos::kdb::{HashStore, PrincipalDb};
use athena_kerberos::kdc::{fixed_clock, Kdc, KdcRole, RealmConfig};
use athena_kerberos::krb::{
    build_as_req, build_tgs_req, read_as_reply_with_password, read_tgs_reply, Principal,
};
use athena_kerberos::crypto::string_to_key;

const REALM: &str = "ATHENA.MIT.EDU";
const NOW: u32 = 600_000_000;
const WS: [u8; 4] = [18, 72, 0, 5];

fn tmpbase(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("krb-file-realm-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(p.with_extension("pag"));
    let _ = std::fs::remove_file(p.with_extension("dir"));
    p
}

#[test]
fn full_protocol_over_file_backed_database() {
    let base = tmpbase("proto");
    // kdb_init against files.
    let store = HashStore::open(&base).unwrap();
    let mut db = PrincipalDb::create(store, string_to_key("master"), NOW).unwrap();
    db.add_principal("krbtgt", REALM, &string_to_key("tgs"), NOW * 2, 96, NOW, "i.").unwrap();
    db.add_principal("bcn", "", &string_to_key("bcn-pw"), NOW * 2, 96, NOW, "i.").unwrap();
    db.add_principal("rlogin", "priam", &string_to_key("srv"), NOW * 2, 96, NOW, "i.").unwrap();
    db.sync().unwrap();

    let kdc = Kdc::new(db, RealmConfig::new(REALM), fixed_clock(NOW), KdcRole::Master, 1);
    let client = Principal::parse("bcn", REALM).unwrap();
    let tgs = Principal::tgs(REALM, REALM);
    let rlogin = Principal::parse("rlogin.priam", REALM).unwrap();

    let req = build_as_req(&client, &tgs, 96, NOW);
    let tgt = read_as_reply_with_password(&kdc.handle(&req, WS), "bcn-pw", NOW).unwrap();
    let req = build_tgs_req(&tgt, &client, WS, NOW + 1, &rlogin, 96);
    let cred = read_tgs_reply(&kdc.handle(&req, WS), &tgt, NOW + 1).unwrap();
    assert_eq!(cred.service, rlogin);
}

#[test]
fn database_survives_restart() {
    let base = tmpbase("restart");
    {
        let store = HashStore::open(&base).unwrap();
        let mut db = PrincipalDb::create(store, string_to_key("master"), NOW).unwrap();
        db.add_principal("krbtgt", REALM, &string_to_key("tgs"), NOW * 2, 96, NOW, "i.").unwrap();
        for i in 0..200 {
            db.add_principal(&format!("user{i}"), "", &string_to_key(&format!("pw{i}")), NOW * 2, 96, NOW, "i.")
                .unwrap();
        }
        db.sync().unwrap();
        // dropped: the "machine reboots"
    }
    // Reopen with the right master key and serve immediately.
    let store = HashStore::open(&base).unwrap();
    let db = PrincipalDb::open(store, string_to_key("master")).unwrap();
    assert_eq!(db.len(), 202); // K.M + krbtgt + 200 users
    let kdc = Kdc::new(db, RealmConfig::new(REALM), fixed_clock(NOW), KdcRole::Master, 2);
    let client = Principal::parse("user150", REALM).unwrap();
    let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW);
    assert!(read_as_reply_with_password(&kdc.handle(&req, WS), "pw150", NOW).is_ok());

    // Wrong master key cannot open the files.
    let store = HashStore::open(&base).unwrap();
    assert!(PrincipalDb::open(store, string_to_key("guess")).is_err());
}

#[test]
fn propagation_from_file_backed_master_to_file_backed_slave() {
    let master_base = tmpbase("prop-master");
    let slave_base = tmpbase("prop-slave");
    let store = HashStore::open(&master_base).unwrap();
    let mut db = PrincipalDb::create(store, string_to_key("master"), NOW).unwrap();
    db.add_principal("krbtgt", REALM, &string_to_key("tgs"), NOW * 2, 96, NOW, "i.").unwrap();
    db.add_principal("bcn", "", &string_to_key("bcn-pw"), NOW * 2, 96, NOW, "i.").unwrap();
    db.sync().unwrap();

    let packet = athena_kerberos::kprop::kprop_build(&db).unwrap();
    let slave_store = HashStore::open(&slave_base).unwrap();
    let slave_db =
        athena_kerberos::kprop::kpropd_receive(&packet, slave_store, string_to_key("master"))
            .unwrap();
    assert_eq!(slave_db.len(), db.len());
    let slave = Kdc::new(slave_db, RealmConfig::new(REALM), fixed_clock(NOW), KdcRole::Slave, 3);
    let client = Principal::parse("bcn", REALM).unwrap();
    let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW);
    assert!(read_as_reply_with_password(&slave.handle(&req, WS), "bcn-pw", NOW).is_ok());
}
