//! Transport independence: the same KDC code that runs on the simulated
//! network serves real UDP datagrams (DESIGN.md substitution note — the
//! simulator is a stand-in, not a shortcut).

use athena_kerberos::kdc::{fixed_clock, Kdc, KdcRole, RealmConfig};
use athena_kerberos::krb::{
    build_as_req, build_tgs_req, krb_rd_req, read_as_reply_with_password, read_tgs_reply,
    Principal, ReplayCache,
};
use athena_kerberos::netsim::{udp_request, Packet, UdpServer};
use athena_kerberos::tools::{kdb_init, register_service, register_user};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const REALM: &str = "ATHENA.MIT.EDU";
const NOW: u32 = 600_000_000;
/// Loopback: what the ticket's address field will contain over real UDP.
const LOOPBACK: [u8; 4] = [127, 0, 0, 1];

#[test]
fn full_protocol_over_real_udp() {
    let mut boot = kdb_init(REALM, "master", NOW, 300).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", NOW).unwrap();
    let mut keygen = athena_kerberos::crypto::KeyGenerator::new(StdRng::seed_from_u64(301));
    let svc_key = register_service(&mut boot.db, "echo", "localhost", NOW, &mut keygen).unwrap();

    let kdc = Arc::new(Kdc::new(
        boot.db,
        RealmConfig::new(REALM),
        fixed_clock(NOW),
        KdcRole::Master,
        302,
    ));
    let kdc_for_service = Arc::clone(&kdc);
    let server = UdpServer::spawn("127.0.0.1:0", move |req: &Packet| {
        Some(kdc_for_service.handle(&req.payload, req.src.addr.0))
    })
    .unwrap();

    // AS exchange over the socket.
    let client = Principal::parse("bcn", REALM).unwrap();
    let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW);
    let reply = udp_request(server.local_addr, &req, Duration::from_millis(500), 3).unwrap();
    let tgt = read_as_reply_with_password(&reply, "bcn-pw", NOW).unwrap();

    // TGS exchange over the socket.
    let svc = Principal::parse("echo.localhost", REALM).unwrap();
    let req = build_tgs_req(&tgt, &client, LOOPBACK, NOW + 1, &svc, 96);
    let reply = udp_request(server.local_addr, &req, Duration::from_millis(500), 3).unwrap();
    let cred = read_tgs_reply(&reply, &tgt, NOW + 1).unwrap();

    // AP exchange verified with the srvtab key.
    let ap = athena_kerberos::krb::krb_mk_req(
        &cred.ticket, &cred.issuing_realm, &cred.key(), &client, LOOPBACK, NOW + 2, 0, false,
    );
    let mut rc = ReplayCache::new();
    let v = krb_rd_req(&ap, &svc, &svc_key, LOOPBACK, NOW + 2, &mut rc).unwrap();
    assert_eq!(v.client.name, "bcn");
}

#[test]
fn udp_wrong_password_fails_the_same_way() {
    let mut boot = kdb_init(REALM, "master", NOW, 310).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", NOW).unwrap();
    let kdc = Arc::new(Kdc::new(
        boot.db,
        RealmConfig::new(REALM),
        fixed_clock(NOW),
        KdcRole::Master,
        311,
    ));
    let server = UdpServer::spawn("127.0.0.1:0", move |req: &Packet| {
        Some(kdc.handle(&req.payload, req.src.addr.0))
    })
    .unwrap();
    let client = Principal::parse("bcn", REALM).unwrap();
    let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, NOW);
    let reply = udp_request(server.local_addr, &req, Duration::from_millis(500), 3).unwrap();
    assert_eq!(
        read_as_reply_with_password(&reply, "wrong", NOW).unwrap_err(),
        athena_kerberos::krb::ErrorCode::IntkBadPw
    );
}
