//! Figure 9 end-to-end: the complete three-phase protocol over the
//! simulated network, plus the three protection levels of §2.1 riding the
//! established session key (experiments E4–E8, E12 functional halves).

use athena_kerberos::crypto::KeyGenerator;
use athena_kerberos::kdc::{Deployment, RealmConfig};
use athena_kerberos::krb::{
    krb_mk_priv, krb_mk_rep, krb_mk_safe, krb_rd_priv, krb_rd_rep, krb_rd_req, krb_rd_safe,
    ErrorCode, Principal, ReplayCache,
};
use athena_kerberos::netsim::{NetConfig, Router, SimNet};
use athena_kerberos::tools::{kdb_init, register_service, register_user, Workstation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REALM: &str = "ATHENA.MIT.EDU";
const WS_ADDR: [u8; 4] = [18, 72, 0, 5];

struct Realm {
    router: Router,
    dep: Deployment,
    service: Principal,
    service_key: athena_kerberos::crypto::DesKey,
}

fn realm() -> Realm {
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master", start, 100).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut keygen = KeyGenerator::new(StdRng::seed_from_u64(101));
    let service_key = register_service(&mut boot.db, "sample", "host", start, &mut keygen).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    ).unwrap();
    Realm {
        router,
        dep,
        service: Principal::parse("sample.host", REALM).unwrap(),
        service_key,
    }
}

fn workstation(r: &Realm) -> Workstation {
    Workstation::new(
        WS_ADDR,
        REALM,
        r.dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&r.dep.clock_cell)),
    )
}

#[test]
fn figure_9_three_phases_and_mutual_auth() {
    let mut r = realm();
    let mut ws = workstation(&r);

    // Phase 1: initial ticket (Fig. 5).
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    // Phase 2: service ticket (Fig. 8).
    let svc = r.service.clone();
    let (ap, cred) = ws.mk_request(&mut r.router, &svc, 7, true).unwrap();
    // Phase 3: request + mutual authentication (Fig. 6, 7).
    let mut rc = ReplayCache::new();
    let v = krb_rd_req(&ap, &svc, &r.service_key, WS_ADDR, ws.now(), &mut rc).unwrap();
    assert_eq!(v.client.to_string(), format!("bcn@{REALM}"));
    assert_eq!(v.cksum, 7);
    let rep = krb_mk_rep(&v);
    krb_rd_rep(&rep, &cred.key(), v.timestamp).unwrap();
}

#[test]
fn session_key_supports_all_three_protection_levels() {
    // §2.1: authentication-only, safe, and private messages.
    let mut r = realm();
    let mut ws = workstation(&r);
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let (ap, cred) = ws.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let mut rc = ReplayCache::new();
    let v = krb_rd_req(&ap, &svc, &r.service_key, WS_ADDR, ws.now(), &mut rc).unwrap();
    let key = cred.key();
    let now = ws.now();

    // Level 1 (authentication at connection setup only) is the AP exchange
    // itself. Level 2: safe messages — readable, tamper-evident.
    let safe = krb_mk_safe(b"authenticated but public", &key, WS_ADDR, now);
    assert_eq!(
        krb_rd_safe(&safe, &v.session_key, now).unwrap(),
        b"authenticated but public"
    );
    let mut tampered = safe.clone();
    tampered.data[0] ^= 1;
    assert_eq!(
        krb_rd_safe(&tampered, &v.session_key, now).unwrap_err(),
        ErrorCode::RdApModified
    );

    // Level 3: private messages — hidden and authenticated.
    let private = krb_mk_priv(b"the new password is swordfish", &key, WS_ADDR, now);
    assert_eq!(
        krb_rd_priv(&private, &v.session_key, Some(WS_ADDR), now).unwrap(),
        b"the new password is swordfish"
    );
}

#[test]
fn message_sizes_are_single_datagram() {
    // The protocol is designed for single-UDP-datagram exchanges; check
    // every message in the flow stays far under 1500 bytes (E2/E3 sizes).
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut r = realm();
    let captured = r.router.net().add_capture();
    let mut ws = workstation(&r);
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let _ = ws.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let sizes: Vec<usize> = captured.lock().iter().map(|p| p.payload.len()).collect();
    assert!(!sizes.is_empty());
    for s in &sizes {
        assert!(*s < 600, "oversized datagram: {s} bytes (all: {sizes:?})");
    }
    let _ = start;
}

#[test]
fn wrong_password_then_right_password() {
    let mut r = realm();
    let mut ws = workstation(&r);
    assert!(ws.kinit(&mut r.router, "bcn", "guess1").is_err());
    assert!(ws.kinit(&mut r.router, "bcn", "guess2").is_err());
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    assert!(ws.whoami().is_some());
}

#[test]
fn tickets_survive_cache_serialization() {
    // The workstation writes its ticket file; a new process reads it and
    // continues the session (the V4 /tmp/tkt<uid> behaviour).
    let mut r = realm();
    let mut ws = workstation(&r);
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let _ = ws.mk_request(&mut r.router, &svc, 0, false).unwrap();

    let bytes = ws.cache.to_bytes();
    let restored = athena_kerberos::krb::CredentialCache::from_bytes(&bytes).unwrap();
    assert_eq!(restored, ws.cache);
    // The restored cache still authenticates.
    let mut ws2 = workstation(&r);
    ws2.cache = restored;
    let (ap, _) = ws2.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let mut rc = ReplayCache::new();
    assert!(krb_rd_req(&ap, &svc, &r.service_key, WS_ADDR, ws2.now(), &mut rc).is_ok());
}

#[test]
fn lossy_network_fails_cleanly_not_wrongly() {
    // Packet loss must surface as a timeout, never as a bogus credential.
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master", start, 102).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig { loss: 1.0, ..Default::default() }));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 0, start,
    ).unwrap();
    let mut ws = Workstation::new(
        WS_ADDR, REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    match ws.kinit(&mut router, "bcn", "bcn-pw") {
        Err(athena_kerberos::tools::ToolError::Net(_)) => {}
        other => panic!("expected network error, got {other:?}"),
    }
    assert!(ws.whoami().is_none());
}

#[test]
fn duplicated_network_packets_do_not_break_the_exchange() {
    // Network-level duplication (not an attack) is tolerated by clients:
    // the KDC answers twice, the client uses the first reply.
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master", start, 103).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig { dup: 1.0, ..Default::default() }));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 0, start,
    ).unwrap();
    let mut ws = Workstation::new(
        WS_ADDR, REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    ws.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    assert!(ws.whoami().is_some());
}

#[test]
fn journal_reconstructs_a_full_login_as_one_trace() {
    // The tracing tentpole end-to-end: one login's AS → TGS → AP hops land
    // in the journal as a single trace with the eight events in protocol
    // order, reconstructable by the krb-trace parser. Propagation is
    // out-of-band (packet metadata), so the V4 wire bytes are untouched —
    // the flow itself is exactly figure_9_three_phases_and_mutual_auth.
    use athena_kerberos::crypto::Scheduled;
    use athena_kerberos::krb::krb_rd_req_sched_ctx;
    use athena_kerberos::telemetry::{lcg_clock_us, ClockUs, Journal, TraceCtx};
    use athena_kerberos::tools::{group_traces, parse_dump};
    use std::sync::Arc;

    let mut r = realm();
    let journal = Journal::shared();
    let clock: ClockUs = lcg_clock_us(42, 40, 400);
    r.dep.master.set_journal(Arc::clone(&journal));
    let mut ws = workstation(&r);
    ws.enable_tracing(Arc::clone(&journal), ClockUs::clone(&clock), 42);

    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _cred) = ws.mk_request(&mut r.router, &svc, 7, true).unwrap();
    let app_ctx = TraceCtx::new(
        Arc::clone(&journal),
        ClockUs::clone(&clock),
        ws.current_trace().unwrap(),
    );
    let sched = Scheduled::new(&r.service_key);
    let mut rc = ReplayCache::new();
    krb_rd_req_sched_ctx(&ap, &svc, &sched, WS_ADDR, ws.now(), &mut rc, Some(&app_ctx)).unwrap();

    let timelines = group_traces(parse_dump(&journal.render()));
    assert_eq!(timelines.len(), 1, "one login, one trace");
    let t = &timelines[0];
    let kinds: Vec<&str> = t.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "login_start", "as_req", "as_ok", "login_ok", "tgs_req", "tgs_ok", "ap_sent",
            "ap_verified"
        ],
        "full login must journal the AS → TGS → AP chain in order"
    );
    for w in t.events.windows(2) {
        assert!(w[0].seq < w[1].seq, "journal seq must be strictly increasing");
    }
    assert!(t.events.iter().all(|e| !e.is_error()));
}

#[test]
fn journal_dump_never_contains_key_material() {
    // Redaction check for the L7 invariant: a full traced login — tickets,
    // session keys, service keys all in flight — must leave no key bytes
    // in the journal render, in any encoding, and no password either.
    use athena_kerberos::crypto::Scheduled;
    use athena_kerberos::krb::krb_rd_req_sched_ctx;
    use athena_kerberos::telemetry::{lcg_clock_us, ClockUs, Journal, TraceCtx};
    use std::sync::Arc;

    let mut r = realm();
    let journal = Journal::shared();
    let clock: ClockUs = lcg_clock_us(7, 40, 400);
    r.dep.master.set_journal(Arc::clone(&journal));
    let mut ws = workstation(&r);
    ws.enable_tracing(Arc::clone(&journal), ClockUs::clone(&clock), 7);

    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let (ap, cred) = ws.mk_request(&mut r.router, &svc, 7, true).unwrap();
    let app_ctx = TraceCtx::new(
        Arc::clone(&journal),
        ClockUs::clone(&clock),
        ws.current_trace().unwrap(),
    );
    let sched = Scheduled::new(&r.service_key);
    let mut rc = ReplayCache::new();
    krb_rd_req_sched_ctx(&ap, &svc, &sched, WS_ADDR, ws.now(), &mut rc, Some(&app_ctx)).unwrap();

    let dump = journal.render();
    assert!(journal.events_recorded() >= 8);
    for key in [&r.service_key, &cred.key()] {
        let hex: String = key.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
        let hex_upper = hex.to_uppercase();
        assert!(!dump.contains(&hex), "journal leaked a key as hex");
        assert!(!dump.contains(&hex_upper), "journal leaked a key as hex");
        assert!(
            !dump.contains(&key.to_u64().to_string()),
            "journal leaked a key as decimal"
        );
    }
    assert!(!dump.contains("bcn-pw"), "journal leaked the password");
}

#[test]
fn every_error_kind_is_constructible_and_journals_at_its_hop() {
    // The observability taxonomy (`ErrorCode::kind()` → ERROR_KINDS) is only
    // trustworthy if every kind can actually happen through the real
    // protocol. Drive each of the seven kinds end-to-end — workstation,
    // KDC, and application-server hops — and check that the hop that owns
    // the error journals it with the matching `err_kind` field.
    use athena_kerberos::crypto::Scheduled;
    use athena_kerberos::krb::{krb_mk_req, krb_rd_req_sched_ctx, Message, ERROR_KINDS};
    use athena_kerberos::telemetry::{lcg_clock_us, ClockUs, Journal, TraceCtx};
    use std::collections::HashSet;
    use std::sync::Arc;

    let mut r = realm();
    let journal = Journal::shared();
    let clock: ClockUs = lcg_clock_us(11, 40, 400);
    r.dep.master.set_journal(Arc::clone(&journal));
    let mut ws = workstation(&r);
    ws.enable_tracing(Arc::clone(&journal), ClockUs::clone(&clock), 11);
    let mut seen: HashSet<&'static str> = HashSet::new();

    // bad_password — client hop: the AS reply will not decrypt.
    match ws.kinit(&mut r.router, "bcn", "wrong-pw") {
        Err(athena_kerberos::tools::ToolError::Krb(e)) => {
            assert_eq!(e.kind(), "bad_password");
            seen.insert(e.kind());
        }
        other => panic!("wrong password must fail with a Kerberos error, got {other:?}"),
    }

    // unknown_principal — KDC hop: no such entry in the database.
    match ws.kinit(&mut r.router, "mallory", "whatever") {
        Err(athena_kerberos::tools::ToolError::Krb(e)) => {
            assert_eq!(e.kind(), "unknown_principal");
            seen.insert(e.kind());
        }
        other => panic!("unknown principal must fail with a Kerberos error, got {other:?}"),
    }

    // decode — KDC hop: garbage on the wire gets a typed error reply.
    let kdc_ep = r.dep.kdc_endpoints()[0];
    let ws_ep = athena_kerberos::netsim::Endpoint::new(WS_ADDR, 1023);
    let reply = r.router.rpc(ws_ep, kdc_ep, b"not a kerberos message").unwrap();
    match Message::decode(&reply).unwrap() {
        Message::Err(err) => {
            assert_eq!(err.code.kind(), "decode");
            seen.insert(err.code.kind());
        }
        other => panic!("garbage must draw an error reply, got {other:?}"),
    }

    // The remaining kinds surface at the application-server hop, all from
    // one legitimate login's credentials.
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let (ap, cred) = ws.mk_request(&mut r.router, &svc, 0, false).unwrap();
    let ctx = TraceCtx::new(
        Arc::clone(&journal),
        ClockUs::clone(&clock),
        ws.current_trace().unwrap(),
    );
    let sched = Scheduled::new(&r.service_key);
    let now = ws.now();

    // replay — the same authenticator presented twice.
    let mut rc = ReplayCache::new();
    krb_rd_req_sched_ctx(&ap, &svc, &sched, WS_ADDR, now, &mut rc, Some(&ctx)).unwrap();
    let e = krb_rd_req_sched_ctx(&ap, &svc, &sched, WS_ADDR, now, &mut rc, Some(&ctx)).unwrap_err();
    assert_eq!(e, ErrorCode::RdApRepeat);
    seen.insert(e.kind());

    // skew — a fresh cache, but the server's clock is an hour off.
    let mut rc = ReplayCache::new();
    let e = krb_rd_req_sched_ctx(&ap, &svc, &sched, WS_ADDR, now + 3600, &mut rc, Some(&ctx))
        .unwrap_err();
    assert_eq!(e, ErrorCode::RdApTime);
    seen.insert(e.kind());

    // other — right ticket, wrong source address (§4.3's address check).
    let mut rc = ReplayCache::new();
    let e = krb_rd_req_sched_ctx(&ap, &svc, &sched, [10, 0, 0, 66], now, &mut rc, Some(&ctx))
        .unwrap_err();
    assert_eq!(e, ErrorCode::RdApBadAddr);
    assert_eq!(e.kind(), "other");
    seen.insert(e.kind());

    // expired_ticket — the wire-obtained ticket, presented with a fresh
    // authenticator long after its lifetime (96 × 5 min) ran out.
    let late = now + u32::from(cred.life) * 300 + 600;
    let client = Principal::parse("bcn", REALM).unwrap();
    let old = krb_mk_req(&cred.ticket, REALM, &cred.key(), &client, WS_ADDR, late, 0, false);
    let mut rc = ReplayCache::new();
    let e = krb_rd_req_sched_ctx(&old, &svc, &sched, WS_ADDR, late, &mut rc, Some(&ctx))
        .unwrap_err();
    assert_eq!(e, ErrorCode::RdApExp);
    seen.insert(e.kind());

    let all: HashSet<&'static str> = ERROR_KINDS.iter().copied().collect();
    assert_eq!(seen, all, "every taxonomy kind must be constructible");

    // Each owning hop journaled its error with the taxonomy slug.
    let dump = journal.render();
    for needle in [
        "kind=kdc_err err_kind=unknown_principal",
        "kind=kdc_err err_kind=decode",
        "kind=replay_hit",
        "kind=ap_err err_kind=skew",
        "kind=ap_err err_kind=other",
        "kind=ap_err err_kind=expired_ticket",
        "kind=login_err err_kind=bad_password",
    ] {
        assert!(dump.contains(needle), "journal missing `{needle}`:\n{dump}");
    }
}

#[test]
fn truncated_and_corrupt_wire_bytes_never_panic() {
    // Chaos runs corrupt packets in flight; every decoder on every hop must
    // answer with a typed error, never a panic. Exercise each parser with
    // every truncation of real wire bytes plus bit-flipped variants.
    use athena_kerberos::apps::parse_request;
    use athena_kerberos::krb::Message;

    let mut r = realm();
    let captured = r.router.net().add_capture();
    let mut ws = workstation(&r);
    ws.kinit(&mut r.router, "bcn", "bcn-pw").unwrap();
    let svc = r.service.clone();
    let (ap, _) = ws.mk_request(&mut r.router, &svc, 0, false).unwrap();

    // Every prefix of every real AS/TGS datagram must decode or error.
    let wire: Vec<Vec<u8>> = captured.lock().iter().map(|p| p.payload.clone()).collect();
    assert!(!wire.is_empty());
    for payload in &wire {
        for cut in 0..payload.len() {
            let _ = Message::decode(&payload[..cut]);
        }
        // And with a bit flipped at each byte position.
        for i in 0..payload.len() {
            let mut bent = payload.clone();
            bent[i] ^= 0x10;
            let _ = Message::decode(&bent);
        }
    }

    // The application framing: truncations and flips of a real request.
    let framed = athena_kerberos::apps::frame_request(&ap, "login", b"bcn");
    for cut in 0..framed.len() {
        assert!(parse_request(&framed[..cut]).is_err(), "truncation at {cut} must error");
    }
    for i in 0..framed.len() {
        let mut bent = framed.clone();
        bent[i] ^= 0x01;
        let _ = parse_request(&bent); // may or may not parse; must not panic
    }

    // A live KDC fed garbage answers every time (an error reply, not silence
    // or a crash).
    let kdc_ep = r.dep.kdc_endpoints()[0];
    let ws_ep = athena_kerberos::netsim::Endpoint::new([18, 72, 0, 99], 1023);
    for garbage in [&b""[..], &[0xFF; 3], &[0x00; 40], &[0x5A; 600]] {
        let reply = r.router.rpc(ws_ep, kdc_ep, garbage).unwrap();
        assert!(matches!(Message::decode(&reply), Ok(Message::Err(_))));
    }
}

#[test]
fn protocol_survives_packet_reordering() {
    // Campus networks reorder; single-datagram exchanges don't care, and
    // the workstation's per-request state (nonce binding) keeps crossed
    // replies from being misattributed.
    use athena_kerberos::tools::{kdb_init, register_user};
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master", start, 104).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig {
        jitter_ms: 40,
        seed: 105,
        ..Default::default()
    }));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    ).unwrap();
    for i in 0..5u8 {
        let mut ws = Workstation::new(
            [18, 72, 0, 100 + i], REALM, dep.kdc_endpoints(),
            athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
        );
        ws.kinit(&mut router, "bcn", "bcn-pw").unwrap();
        assert!(ws.whoami().is_some());
    }
}
