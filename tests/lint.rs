//! Tier-1 gate for the `krb-lint` static-analysis pass: the workspace must
//! be clean — zero live findings, zero stale allowlist entries — and the
//! allowlist must stay small enough to burn down, not grow.

use krb_lint::run;
use std::path::Path;

const MAX_ALLOW_ENTRIES: usize = 10;

#[test]
fn workspace_passes_krb_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root).expect("lint pass runs");
    assert!(
        report.findings.is_empty(),
        "krb-lint findings (fix them or, with justification, allowlist):\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allow.is_empty(),
        "stale lint.allow entries (the code is clean now — delete them):\n{}",
        report
            .stale_allow
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.allow_count <= MAX_ALLOW_ENTRIES,
        "lint.allow has {} entries (max {MAX_ALLOW_ENTRIES}); fix code instead of allowlisting",
        report.allow_count
    );
}

#[test]
fn allowlisted_findings_are_still_tracked() {
    // The one blessed entry (kdb's master-key-encrypted principal key) must
    // show up as *allowed*, proving the allowlist matches real findings
    // rather than rotting silently.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root).expect("lint pass runs");
    assert!(
        report
            .allowed
            .iter()
            .any(|f| f.rule == "L1" && f.key == "key_encrypted"),
        "expected the kdb key_encrypted entry to be exercised"
    );
}
