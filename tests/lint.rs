//! Tier-1 gate for the `krb-lint` static-analysis pass: the workspace must
//! be clean — zero live findings, zero stale allowlist entries — and the
//! allowlist must stay small enough to burn down, not grow.

use krb_lint::run;
use std::path::Path;

const MAX_ALLOW_ENTRIES: usize = 10;

#[test]
fn workspace_passes_krb_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root).expect("lint pass runs");
    assert!(
        report.findings.is_empty(),
        "krb-lint findings (fix them or, with justification, allowlist):\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allow.is_empty(),
        "stale lint.allow entries (the code is clean now — delete them):\n{}",
        report
            .stale_allow
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.allow_count <= MAX_ALLOW_ENTRIES,
        "lint.allow has {} entries (max {MAX_ALLOW_ENTRIES}); fix code instead of allowlisting",
        report.allow_count
    );
}

/// Every known-bad fixture fires its one expected finding; every
/// known-good twin stays silent. The fixtures are scanned under a neutral
/// path (`crates/fixture/src/...`) so no path-scoped rule or exemption
/// interferes.
#[test]
fn l8_l9_fixture_corpus_fires_deterministically() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = root.join("crates/lint/tests/fixtures");
    let bad: &[(&str, &str, &str)] = &[
        ("l8_guard_across_send.rs", "L8", "master_across_send"),
        ("l8_temp_guard_in_call.rs", "L8", "master_across_kprop_build"),
        ("l8_lock_order.rs", "L8", "order_ledger_master"),
        ("l8_same_lock_twice.rs", "L8", "order_master_master"),
        ("l9_multihop_format.rs", "L9", "aliased"),
        ("l9_password_println.rs", "L9", "password"),
        ("l9_field_from.rs", "L9", "DesKey"),
        ("l9_mon_frame.rs", "L9", "session_key"),
    ];
    for (file, rule, key) in bad {
        let src = std::fs::read_to_string(dir.join(file)).expect(file);
        let findings = krb_lint::scan_file(&format!("crates/fixture/src/{file}"), &src);
        assert_eq!(
            findings.len(),
            1,
            "{file}: expected exactly one finding, got {findings:?}"
        );
        assert_eq!(findings[0].rule, *rule, "{file}");
        assert_eq!(findings[0].key, *key, "{file}");

        // ...and its good twin is clean.
        let twin = file.replace(".rs", "_ok.rs");
        let src = std::fs::read_to_string(dir.join(&twin)).expect(&twin);
        let findings = krb_lint::scan_file(&format!("crates/fixture/src/{twin}"), &src);
        assert!(findings.is_empty(), "{twin}: expected clean, got {findings:?}");
    }
}

/// Stale-allowlist enforcement covers the scope-aware rules: in the
/// mini-workspace fixture, the used L8 entry shows up as allowed while
/// the unmatched L8 (lock-order) and L9 entries are reported stale.
#[test]
fn stale_l8_l9_allow_entries_fail_the_run() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/lint/tests/fixtures/stale_ws");
    let report = krb_lint::run(&root).expect("fixture lint pass runs");
    assert!(report.findings.is_empty(), "live: {:?}", report.findings);
    assert!(
        report
            .allowed
            .iter()
            .any(|f| f.rule == "L8" && f.key == "master_across_send"),
        "the used L8 entry must be exercised: {:?}",
        report.allowed
    );
    let stale: Vec<(String, String)> = report
        .stale_allow
        .iter()
        .map(|e| (e.rule.clone(), e.key.clone()))
        .collect();
    assert_eq!(
        stale,
        vec![
            ("L8".to_string(), "order_ledger_master".to_string()),
            ("L9".to_string(), "password".to_string())
        ],
        "both scope-rule entries must be flagged stale"
    );
    assert!(!report.is_clean(), "stale entries must fail the run");
}

#[test]
fn allowlisted_findings_are_still_tracked() {
    // The one blessed entry (kdb's master-key-encrypted principal key) must
    // show up as *allowed*, proving the allowlist matches real findings
    // rather than rotting silently.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root).expect("lint pass runs");
    assert!(
        report
            .allowed
            .iter()
            .any(|f| f.rule == "L1" && f.key == "key_encrypted"),
        "expected the kdb key_encrypted entry to be exercised"
    );
}
