//! Replication and propagation across crates (paper §5.3, Figures 10/13;
//! experiments E9/E11 functional halves).

use athena_kerberos::kadm::{
    build_admin_request, build_kdbm_ticket_request, kpasswd_op, read_admin_reply,
    read_kdbm_ticket_reply, Acl, KdbmServer,
};
use athena_kerberos::kdc::{Deployment, RealmConfig};
use athena_kerberos::kprop::{kprop_build, kpropd_receive, kpropd_verify, PropError};
use athena_kerberos::krb::Principal;
use athena_kerberos::netsim::{NetConfig, Router, SimNet};
use athena_kerberos::tools::{kdb_init, register_user, Workstation};

const REALM: &str = "ATHENA.MIT.EDU";
const WS_ADDR: [u8; 4] = [18, 72, 0, 5];

fn deploy(slaves: usize) -> (Router, Deployment) {
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master-key-pw", start, 200).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], slaves, start,
    ).unwrap();
    (router, dep)
}

fn ws(dep: &Deployment) -> Workstation {
    Workstation::new(
        WS_ADDR, REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    )
}

#[test]
fn password_change_reaches_slaves_only_after_propagation() {
    // The full consistency story of §5.3: writes go to the master (via the
    // KDBM); slaves serve stale data until the next hourly propagation.
    let (mut router, dep) = deploy(1);
    KdbmServer::register_service(&dep.master, &athena_kerberos::crypto::string_to_key("kdbm"),
        athena_kerberos::netsim::EPOCH_1987).unwrap();
    let mut kdbm = KdbmServer::new(
        std::sync::Arc::clone(&dep.master),
        Acl::new(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    )
    .unwrap();

    // Change bcn's password through the KDBM.
    let client = Principal::parse("bcn", REALM).unwrap();
    let workstation = ws(&dep);
    let now = workstation.now();
    let req = build_kdbm_ticket_request(&client, now);
    let reply = router.rpc(workstation.endpoint, dep.kdc_endpoints()[0], &req).unwrap();
    let cred = read_kdbm_ticket_reply(&reply, "bcn-pw", now).unwrap();
    let admin_req = build_admin_request(&cred, &client, WS_ADDR, now, &kpasswd_op("new-pw"));
    read_admin_reply(&kdbm.handle(&admin_req, WS_ADDR)).unwrap();

    // Master sees the new password immediately.
    let master_ep = dep.kdc_endpoints()[0];
    let slave_ep = dep.kdc_endpoints()[1];
    let mut probe = ws(&dep);
    probe.kdc_endpoints = vec![master_ep];
    assert!(probe.kinit(&mut router, "bcn", "new-pw").is_ok());

    // Slave still has the old database.
    let mut probe = ws(&dep);
    probe.kdc_endpoints = vec![slave_ep];
    assert!(probe.kinit(&mut router, "bcn", "new-pw").is_err(), "slave is stale pre-propagation");
    assert!(probe.kinit(&mut router, "bcn", "bcn-pw").is_ok(), "old password still valid on slave");

    // Propagate (Fig. 13) and the slave converges.
    let snap = dep.master.snapshot();
    let packet = kprop_build(snap.db()).unwrap();
    let entries = kpropd_verify(&packet, &dep.master_key).unwrap();
    let mut store = athena_kerberos::kdb::MemStore::new();
    athena_kerberos::kdb::dump::install(&mut store, &entries).unwrap();
    let db = athena_kerberos::kdb::PrincipalDb::open(store, dep.master_key).unwrap();
    dep.slaves[0].1.install_db(db);

    let mut probe = ws(&dep);
    probe.kdc_endpoints = vec![slave_ep];
    assert!(probe.kinit(&mut router, "bcn", "new-pw").is_ok(), "slave converged");
    assert!(probe.kinit(&mut router, "bcn", "bcn-pw").is_err(), "old password gone");
}

#[test]
fn master_down_blocks_admin_but_not_authentication() {
    // §5: "while authentication can still occur (on slaves),
    // administration requests cannot be serviced if the master machine is
    // down."
    let (mut router, dep) = deploy(2);
    router.net().set_partitioned(athena_kerberos::netsim::Ipv4(dep.master_addr), true);

    // Authentication still works via slaves.
    let mut workstation = ws(&dep);
    workstation.kinit(&mut router, "bcn", "bcn-pw").unwrap();

    // Admin (which must reach the master's KDBM endpoint) cannot proceed:
    // the AS request for a KDBM ticket to the master times out.
    let client = Principal::parse("bcn", REALM).unwrap();
    let req = build_kdbm_ticket_request(&client, workstation.now());
    assert!(router.rpc(workstation.endpoint, dep.kdc_endpoints()[0], &req).is_err());
}

#[test]
fn tampered_propagation_is_rejected_and_slave_keeps_serving() {
    let (mut router, dep) = deploy(1);
    let snap = dep.master.snapshot();
    let mut packet = kprop_build(snap.db()).unwrap();
    let n = packet.len();
    packet[n - 1] ^= 0x01;
    assert_eq!(
        kpropd_receive(&packet, athena_kerberos::kdb::MemStore::new(), dep.master_key)
            .map(|_| ())
            .unwrap_err(),
        PropError::ChecksumMismatch
    );
    // The slave keeps its previous database and keeps authenticating.
    let mut probe = ws(&dep);
    probe.kdc_endpoints = vec![dep.kdc_endpoints()[1]];
    assert!(probe.kinit(&mut router, "bcn", "bcn-pw").is_ok());
}

#[test]
fn krbtgt_rollover_via_propagation_invalidates_schedule_caches() {
    // The PR-3 cache-coherence contract: a KDC holds the krbtgt schedule
    // warm and an LRU of service-key schedules, and `install_db` (the
    // kpropd apply path) must drop both. A slave that kept serving from a
    // stale schedule after a krbtgt rollover would mint tickets no one can
    // use — or worse, honour TGTs sealed under the retired key.
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "mk", start, 200).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    register_user(&mut boot.db, "rcmd", "host", "svc-pw", start).unwrap();
    register_user(&mut boot.db, "pop", "po", "pop-pw", start).unwrap();
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    ).unwrap();
    let slave = std::sync::Arc::clone(&dep.slaves[0].1);
    let slave_ep = dep.kdc_endpoints()[1];
    let rcmd = Principal::parse("rcmd.host", REALM).unwrap();
    let pop = Principal::parse("pop.po", REALM).unwrap();

    // Warm the slave's caches with a full AS + TGS cycle.
    let mut probe = ws(&dep);
    probe.kdc_endpoints = vec![slave_ep];
    probe.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    probe.get_service_ticket(&mut router, &rcmd).unwrap();
    let warm_misses = slave.telemetry().counter_value("kdc_sched_cache_misses_total");
    assert!(warm_misses > 0, "first requests must populate the schedule cache");

    // Steady state: a second login/ticket cycle builds no new schedules.
    let mut probe2 = ws(&dep);
    probe2.kdc_endpoints = vec![slave_ep];
    probe2.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    probe2.get_service_ticket(&mut router, &rcmd).unwrap();
    {
        let t = slave.telemetry();
        assert_eq!(
            t.counter_value("kdc_sched_cache_misses_total"),
            warm_misses,
            "steady-state requests must be cache hits"
        );
        assert!(t.counter_value("kdc_sched_cache_hits_total") > 0);
    }

    // Re-key the realm: a fresh bootstrap from a different key-generator
    // seed gives krbtgt a new random key (users keep password-derived
    // keys), then the dump propagates to the slave exactly as kpropd
    // would apply it (Fig. 13).
    let mut rekeyed = kdb_init(REALM, "mk", start, 500).unwrap();
    register_user(&mut rekeyed.db, "bcn", "", "bcn-pw", start).unwrap();
    register_user(&mut rekeyed.db, "rcmd", "host", "svc-pw", start).unwrap();
    register_user(&mut rekeyed.db, "pop", "po", "pop-pw", start).unwrap();
    let packet = kprop_build(&rekeyed.db).unwrap();
    let entries = kpropd_verify(&packet, &dep.master_key).unwrap();
    let mut store = athena_kerberos::kdb::MemStore::new();
    athena_kerberos::kdb::dump::install(&mut store, &entries).unwrap();
    let db = athena_kerberos::kdb::PrincipalDb::open(store, dep.master_key).unwrap();
    slave.install_db(db);

    // The old TGT is sealed under the retired krbtgt key; asking the TGS
    // for a not-yet-cached service must fail, not be served from a stale
    // cached schedule.
    assert!(
        probe.get_service_ticket(&mut router, &pop).is_err(),
        "TGT under the retired krbtgt key must be rejected after rollover"
    );

    // A fresh login under the new key works end to end...
    let mut fresh = ws(&dep);
    fresh.kdc_endpoints = vec![slave_ep];
    fresh.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    fresh.get_service_ticket(&mut router, &pop).unwrap();

    // ...and the invalidation is observable: the cleared LRU re-misses.
    let after = slave.telemetry().counter_value("kdc_sched_cache_misses_total");
    assert!(after > warm_misses, "install_db must clear the schedule cache ({after} vs {warm_misses})");
}

#[test]
fn master_partitioned_slave_answers_within_retry_budget() {
    // §5.3 under the chaos fault model: a timed partition window isolates
    // the master, and the workstation's failover finds the slave after
    // spending exactly `RETRIES_PER_KDC` timeouts on the dead host.
    use athena_kerberos::netsim::{Fault, FaultPlan, FaultWindow, Ipv4, LinkMatch};

    let (mut router, dep) = deploy(1);
    let plan = FaultPlan::with_windows(
        7,
        vec![FaultWindow {
            from_ms: 0,
            until_ms: u64::MAX,
            link: LinkMatch::Host(Ipv4(dep.master_addr)),
            fault: Fault::Partition,
        }],
    );
    router.net().set_fault_plan(plan);

    let mut workstation = ws(&dep);
    workstation.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    assert!(workstation.whoami().is_some());

    // Every packet aimed at the master was swallowed by the partition; one
    // AS exchange costs the full per-KDC retry budget before failover.
    let registry = router.net().registry();
    assert_eq!(
        registry.counter_value("net_fault_partitioned_total"),
        Workstation::RETRIES_PER_KDC as u64,
        "failover must spend exactly the retry budget on the dead master"
    );
}

#[test]
fn all_kdcs_partitioned_fails_with_typed_timeout() {
    // Both the master and every slave unreachable: the client reports a
    // typed network timeout — no panic, no bogus credential.
    use athena_kerberos::netsim::{Fault, FaultPlan, FaultWindow, LinkMatch, NetError};

    let (mut router, dep) = deploy(1);
    let plan = FaultPlan::with_windows(
        8,
        vec![FaultWindow {
            from_ms: 0,
            until_ms: u64::MAX,
            link: LinkMatch::Any,
            fault: Fault::Partition,
        }],
    );
    router.net().set_fault_plan(plan);

    let mut workstation = ws(&dep);
    match workstation.kinit(&mut router, "bcn", "bcn-pw") {
        Err(athena_kerberos::tools::ToolError::Net(NetError::Timeout)) => {}
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(workstation.whoami().is_none());
}

#[test]
fn heal_lets_the_pending_login_complete() {
    // The liveness half of the chaos oracle, in miniature: a login that
    // failed during a full partition completes once `heal_faults()` closes
    // the windows — same workstation, same credentials, no restart.
    use athena_kerberos::krb::{krb_rd_req, ReplayCache};
    use athena_kerberos::netsim::{Fault, FaultPlan, FaultWindow, LinkMatch};

    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master-key-pw", start, 200).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut keygen = athena_kerberos::crypto::KeyGenerator::new(
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(201),
    );
    let svc_key = athena_kerberos::tools::register_service(
        &mut boot.db, "sample", "host", start, &mut keygen,
    )
    .unwrap();
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    )
    .unwrap();

    let plan = FaultPlan::with_windows(
        9,
        vec![FaultWindow {
            from_ms: 0,
            until_ms: u64::MAX,
            link: LinkMatch::Any,
            fault: Fault::Partition,
        }],
    );
    router.net().set_fault_plan(plan);

    let mut workstation = ws(&dep);
    assert!(workstation.kinit(&mut router, "bcn", "bcn-pw").is_err(), "partitioned");

    router.net().heal_faults();
    workstation.kinit(&mut router, "bcn", "bcn-pw").unwrap();

    // The healed session is fully usable: a service ticket mints and the
    // AP_REQ verifies at the server.
    let svc = Principal::parse("sample.host", REALM).unwrap();
    let (ap, _) = workstation.mk_request(&mut router, &svc, 0, false).unwrap();
    let mut rc = ReplayCache::new();
    krb_rd_req(&ap, &svc, &svc_key, WS_ADDR, workstation.now(), &mut rc).unwrap();
}

#[test]
fn propagation_scales_with_database_size() {
    // E11's shape: dump size grows linearly with principals.
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut sizes = Vec::new();
    for n in [100usize, 400, 1600] {
        let mut boot = kdb_init(REALM, "mk", start, n as u64).unwrap();
        for i in 0..n {
            register_user(&mut boot.db, &format!("u{i}"), "", &format!("p{i}"), start).unwrap();
        }
        let packet = kprop_build(&boot.db).unwrap();
        sizes.push(packet.len());
    }
    assert!(sizes[1] > sizes[0] * 3 && sizes[1] < sizes[0] * 5, "{sizes:?}");
    assert!(sizes[2] > sizes[1] * 3 && sizes[2] < sizes[1] * 5, "{sizes:?}");
}

#[test]
fn concurrent_load_never_observes_a_half_installed_database() {
    // The concurrent extension of the rollover regression above: while
    // reader threads hammer the AS path lock-free, the kpropd apply path
    // (`install_db`) keeps swapping between two complete databases that
    // differ in bcn's password. Because the snapshot is built before the
    // swap and replaced atomically, every single reply must decode under
    // exactly one of the two passwords — a reply that decodes under
    // neither would mean a request saw a torn view (e.g. krbtgt present
    // but the user missing, or a key schedule from the retired database).
    use athena_kerberos::kdc::{fixed_clock, Kdc, KdcRole};
    use athena_kerberos::krb::{build_as_req, read_as_reply_with_password};
    use std::sync::atomic::{AtomicU32, Ordering};

    let start = athena_kerberos::netsim::EPOCH_1987;
    let make_db = |seed: u64, pw: &str| {
        let mut boot = kdb_init(REALM, "mk", start, seed).unwrap();
        register_user(&mut boot.db, "bcn", "", pw, start).unwrap();
        boot.db
    };
    let kdc = std::sync::Arc::new(Kdc::new(
        make_db(400, "pw-a"),
        RealmConfig::new(REALM),
        fixed_clock(start),
        KdcRole::Slave,
        401,
    ));
    let client = Principal::parse("bcn", REALM).unwrap();
    let req = build_as_req(&client, &Principal::tgs(REALM, REALM), 96, start);

    const READERS: usize = 4;
    const PER_READER: u32 = 300;
    const INSTALLS: u64 = 20;
    let handled = AtomicU32::new(0);
    let (seen_a, seen_b, torn) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(|| {
                    let (mut a, mut b, mut bad) = (0u32, 0u32, 0u32);
                    for _ in 0..PER_READER {
                        let reply = kdc.handle(&req, WS_ADDR);
                        let ok_a = read_as_reply_with_password(&reply, "pw-a", start).is_ok();
                        let ok_b = read_as_reply_with_password(&reply, "pw-b", start).is_ok();
                        match (ok_a, ok_b) {
                            (true, false) => a += 1,
                            (false, true) => b += 1,
                            _ => bad += 1,
                        }
                        handled.fetch_add(1, Ordering::Relaxed);
                    }
                    (a, b, bad)
                })
            })
            .collect();

        // Alternate complete databases under the readers' feet, pacing so
        // at least 8 requests complete against each installed version.
        let total = READERS as u32 * PER_READER;
        for i in 0..INSTALLS {
            let pw = if i % 2 == 0 { "pw-b" } else { "pw-a" };
            kdc.install_db(make_db(402 + i, pw));
            let target = (handled.load(Ordering::Relaxed) + 8).min(total);
            while handled.load(Ordering::Relaxed) < target {
                std::thread::yield_now();
            }
        }

        workers.into_iter().map(|h| h.join().unwrap()).fold(
            (0u32, 0u32, 0u32),
            |(a, b, bad), (ra, rb, rbad)| (a + ra, b + rb, bad + rbad),
        )
    });

    assert_eq!(torn, 0, "{torn} replies decoded under neither database version");
    assert!(seen_a > 0 && seen_b > 0, "both versions must serve ({seen_a} / {seen_b})");
    assert_eq!(kdc.telemetry().counter_value("kdc_store_swaps_total"), INSTALLS);
}
