//! Root-level checks of the `krb-adversary` subsystem through the
//! umbrella-crate facade: the seeded Dolev–Yao soak must be byte-identical
//! under replay, the honest protocol must keep both oracles green, and the
//! `--smoke` document consumed by `scripts/check.sh` must carry every key
//! the gate greps for.

use athena_kerberos::adversary::{self, AdvConfig, Leak, ADVERSARY_JSON_KEYS, ADV_SEED};

#[test]
fn smoke_document_is_deterministic_and_self_verifying() {
    // `smoke_json` runs every leak mode at CI scale and *internally*
    // verifies each run against its expected oracle verdicts — honest
    // green, each leak tripping exactly the matching detections — so a
    // successful return is itself the assertion.
    let a = adversary::smoke_json(ADV_SEED).expect("smoke must self-verify");
    let b = adversary::smoke_json(ADV_SEED).expect("smoke must self-verify");
    assert_eq!(a, b, "same seed must replay byte-identically");
    for key in ADVERSARY_JSON_KEYS {
        assert!(a.contains(&format!("\"{key}\"")), "smoke JSON missing key {key:?}");
    }
}

#[test]
fn honest_soak_through_the_facade_stays_green() {
    let cfg = AdvConfig::smoke(ADV_SEED, Leak::None);
    let report = adversary::run(cfg).expect("honest protocol must not trip an oracle");
    adversary::verify_expectations(&report).expect("honest expectations");

    assert!(report.secrecy_ok() && report.auth_ok());
    assert_eq!(report.closure_keys, 0, "no leak: the attacker derives no keys");
    assert_eq!(report.accepted_forgeries, 0);
    assert!(report.injections() > 0, "the attacker must actually attack");
    assert!(report.logins_ok > 0 && report.app_ok > 0, "victim work must go through");

    // The report renders deterministically in both shapes.
    let again = adversary::run(AdvConfig::smoke(ADV_SEED, Leak::None)).unwrap();
    assert_eq!(report.render_json(), again.render_json());
    assert_eq!(report.render_human(), again.render_human());
}
