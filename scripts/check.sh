#!/bin/sh
# Tier-1 verification: build, test, and the krb-lint static-invariant pass.
# Run from anywhere; operates on the workspace this script lives in.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo check --workspace --all-targets"
# Benches and examples are not built by `cargo build`/`cargo test`; this
# keeps them compiling (e.g. against the vendored criterion stub).
cargo check --workspace --all-targets

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
# --workspace: the root package's integration tests alone skip the member
# crates' own test suites.
cargo test --workspace -q

echo "== krb-lint"
cargo run -q -p krb-lint

echo "== OK"
