#!/bin/sh
# Tier-1 verification: build, test, and the krb-lint static-invariant pass.
# Run from anywhere; operates on the workspace this script lives in.
set -eu

cd "$(dirname "$0")/.."

# One cleanup function owns every temp file. (Two separate `trap ... EXIT`
# lines would silently replace each other — only the last would run.)
tmpfiles=""
cleanup() {
    # shellcheck disable=SC2086 — word-splitting the list is the point.
    [ -n "$tmpfiles" ] && rm -f $tmpfiles
}
trap cleanup EXIT
mktmp() {
    _t="$(mktemp)"
    tmpfiles="$tmpfiles $_t"
    printf '%s' "$_t"
}

echo "== cargo check --workspace --all-targets"
# Benches and examples are not built by `cargo build`/`cargo test`; this
# keeps them compiling (e.g. against the vendored criterion stub).
cargo check --workspace --all-targets

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
# --workspace: the root package's integration tests alone skip the member
# crates' own test suites.
cargo test --workspace -q

echo "== krb-lint --json"
# Machine-readable pass: the v2 schema must be present, every rule id
# accounted for, and the tree clean (zero live findings, zero stale allow
# entries). The human-readable pass also runs in tests/lint.rs.
lint_json="$(mktmp)"
# A dirty tree exits non-zero; let the schema checks below report it with
# the JSON in hand instead of dying silently under `set -e`.
cargo run -q -p krb-lint -- --json > "$lint_json" || true
for key in schema files_scanned clean allow_count rules findings allowed \
        stale_allow; do
    if ! grep -q "\"$key\"" "$lint_json"; then
        echo "krb-lint --json output is missing \"$key\"" >&2
        exit 1
    fi
done
if ! grep -q '"schema":"krb-lint/v2"' "$lint_json"; then
    echo "krb-lint --json schema is not krb-lint/v2" >&2
    exit 1
fi
for rule in L1 L2 L3 L4 L5 L6 L8 L9; do
    if ! grep -q "{\"id\":\"$rule\"" "$lint_json"; then
        echo "krb-lint --json is missing the $rule rule counter" >&2
        exit 1
    fi
done
if ! grep -q '"clean":true' "$lint_json"; then
    echo "krb-lint reports a dirty tree:" >&2
    cat "$lint_json" >&2
    exit 1
fi
if grep -q '"files_scanned":0' "$lint_json"; then
    echo "krb-lint scanned zero files — the pass proved nothing" >&2
    exit 1
fi

echo "== krb-stat --smoke"
# The deterministic KDC load loop must run and emit a well-formed bench
# snapshot (the full schema is asserted by crates/tools/src/krbstat.rs
# tests; this guards the binary + JSON plumbing end to end).
smoke_json="$(mktmp)"
cargo run -q -p krb-tools --bin krb-stat -- --smoke --out "$smoke_json"
for key in as_per_sec tgs_per_sec latency_us p50 p95 p99 threads mode \
        sched_cache journal events dropped; do
    if ! grep -q "\"$key\"" "$smoke_json"; then
        echo "krb-stat smoke output is missing \"$key\"" >&2
        exit 1
    fi
done

echo "== krb-stat --smoke --threads 4 --shared (byte-identity)"
# Four workers hammer ONE realm through the lock-free snapshot path; the
# per-shard journal rings must merge back to a byte-identical dump and the
# whole JSON snapshot must be reproducible run-over-run (DESIGN.md §15).
shared_a="$(mktmp)"
shared_b="$(mktmp)"
shared_ja="$(mktmp)"
shared_jb="$(mktmp)"
cargo run -q -p krb-tools --bin krb-stat -- --smoke --threads 4 --shared \
    --out "$shared_a" --journal "$shared_ja"
cargo run -q -p krb-tools --bin krb-stat -- --smoke --threads 4 --shared \
    --out "$shared_b" --journal "$shared_jb"
if ! diff -q "$shared_a" "$shared_b" > /dev/null; then
    echo "shared-realm krb-stat is not deterministic (two JSON snapshots differ)" >&2
    exit 1
fi
if ! diff -q "$shared_ja" "$shared_jb" > /dev/null; then
    echo "shared-realm merged journal is not byte-identical across runs" >&2
    exit 1
fi
if ! grep -q '"mode": "shared"' "$shared_a"; then
    echo "krb-stat --shared did not record mode=shared" >&2
    exit 1
fi
echo "== no Mutex<Kdc outside the lint fixtures"
# The global KDC lock is gone; the only allowed occurrences of the old
# pattern are krb-lint's own L8 test fixtures. Anything else is a
# regression reintroducing the serialized service.
if grep -rn --include='*.rs' 'Mutex<Kdc' crates tests src 2>/dev/null \
        | grep -v '^crates/lint/'; then
    echo "found a Mutex<Kdc> outside crates/lint fixtures (see above)" >&2
    exit 1
fi

echo "== krb-trace --smoke"
# Seeded full login + forced failures must reconstruct as deterministic
# traces (byte-identical across two runs); exits non-zero on any drift.
cargo run -q -p krb-tools --bin krb-trace -- --smoke > /dev/null

echo "== krb-chaos + krb-adversary --smoke (shared-realm KDC soaks)"
# One step, two soaks, both driving the snapshot-swapped shared-realm KDC
# (every handler goes through `&self` / `Arc<Kdc>` since the global lock
# was removed). krb-chaos: every fault profile at CI scale, all four
# oracle families (safety, liveness, conservation, trace completeness)
# green. krb-adversary: honest protocol green under active Dolev-Yao
# attack, each --leak mode tripping exactly the matching oracles. Both
# hold the determinism contract — two same-seed runs byte-identical.
chaos_a="$(mktmp)"
chaos_b="$(mktmp)"
cargo run -q -p krb-sim --bin krb-chaos -- --smoke > "$chaos_a"
cargo run -q -p krb-sim --bin krb-chaos -- --smoke > "$chaos_b"
if ! diff -q "$chaos_a" "$chaos_b" > /dev/null; then
    echo "krb-chaos --smoke is not deterministic (two runs differ)" >&2
    exit 1
fi
for key in tool seed profiles profile ops logins_ok app_ok replay_hits \
        dups_at_server healed_logins net corrupted journal oracles safety \
        liveness conservation trace_completeness metrics_journal; do
    if ! grep -q "\"$key\"" "$chaos_a"; then
        echo "krb-chaos smoke output is missing \"$key\"" >&2
        exit 1
    fi
done

adv_a="$(mktmp)"
adv_b="$(mktmp)"
cargo run -q -p krb-adversary --bin krb-adversary -- --smoke > "$adv_a"
cargo run -q -p krb-adversary --bin krb-adversary -- --smoke > "$adv_b"
if ! diff -q "$adv_a" "$adv_b" > /dev/null; then
    echo "krb-adversary --smoke is not deterministic (two runs differ)" >&2
    exit 1
fi
for key in tool seed steps leak logins_ok app_ok injections replay \
        time_shift splice forge impersonate accepted_forgeries rejections \
        closure keys creds blobs atoms derivations key_fps tape_dropped \
        journal events dropped oracles secrecy authentication \
        metrics_journal violations; do
    if ! grep -q "\"$key\"" "$adv_a"; then
        echo "krb-adversary smoke output is missing \"$key\"" >&2
        exit 1
    fi
done

echo "== krb-repl --smoke (replication gate, byte-identity)"
# Bulk-loads a realm at depth through the kdb pre-splitting batch path,
# then drives journaled incremental propagation rounds against the
# slaves under faults; the conservation oracle (slave dump ≡ master
# dump at every corroborated head ack) and the metrics≡journal oracle
# must hold, and two same-seed runs must be byte-identical.
repl_a="$(mktmp)"
repl_b="$(mktmp)"
cargo run -q -p krb-sim --bin krb-repl -- --smoke > "$repl_a"
cargo run -q -p krb-sim --bin krb-repl -- --smoke > "$repl_b"
if ! diff -q "$repl_a" "$repl_b" > /dev/null; then
    echo "krb-repl --smoke is not deterministic (two runs differ)" >&2
    exit 1
fi
for key in tool principals rounds seed profile admin_writes transfers \
        accepted rejected incr full final_seq bytes_shipped oracles \
        repl_conservation metrics_journal; do
    if ! grep -q "\"$key\"" "$repl_a"; then
        echo "krb-repl smoke output is missing \"$key\"" >&2
        exit 1
    fi
done

echo "== krb-top --once --json (schema + byte-identity)"
# The introspection dashboard's CI mode queries the live MonService over
# the netsim seam; the JSON snapshot must carry the full schema (health,
# latency exemplars, heavy-hitter tables, flight records) and be
# byte-identical across two same-seed runs.
top_a="$(mktmp)"
top_b="$(mktmp)"
cargo run -q -p krb-tools --bin krb-top -- --once --json > "$top_a"
cargo run -q -p krb-tools --bin krb-top -- --once --json > "$top_b"
if ! diff -q "$top_a" "$top_b" > /dev/null; then
    echo "krb-top --once --json is not deterministic (two runs differ)" >&2
    exit 1
fi
for key in tool component health state err_permille replay_permille \
        journal_dropped kdc as_ok tgs_ok errors replay_hits store_swaps \
        stripe_hits latency_us exemplars top as_clients tgs_services \
        error_principals journal events dropped flight captures trace \
        fail_kind truncated chain; do
    if ! grep -q "\"$key\"" "$top_a"; then
        echo "krb-top --once --json output is missing \"$key\"" >&2
        exit 1
    fi
done

echo "== BENCH_kdc.json schema"
# The committed bench snapshot must carry the current schema (threads,
# realm mode, the shared-realm scaling sweep, schedule-cache counters); a
# stale file means the numbers predate the concurrent KDC and are not
# comparable. Regenerate with: krb-stat --scale.
if [ -f BENCH_kdc.json ]; then
    for key in threads mode scaling sched_cache journal; do
        if ! grep -q "\"$key\"" BENCH_kdc.json; then
            echo "BENCH_kdc.json is missing \"$key\" — regenerate with krb-stat" >&2
            exit 1
        fi
    done
else
    echo "BENCH_kdc.json not found — generate with: cargo run --release -p krb-tools --bin krb-stat" >&2
    exit 1
fi

echo "== krb-kdbench --smoke + BENCH_kdb.json schema"
# The kdb depth bench must run end to end at CI scale and emit the full
# schema, and the committed million-principal snapshot must carry it
# too (wall-clock numbers are host-specific; the structural fields are
# deterministic). Regenerate with: krb-kdbench (release).
kdbench_json="$(mktmp)"
cargo run -q -p krb-tools --bin krb-kdbench -- --smoke --out "$kdbench_json" \
    > /dev/null
for f in "$kdbench_json" BENCH_kdb.json; do
    if [ ! -f "$f" ]; then
        echo "$f not found — generate with: cargo run --release -p krb-tools --bin krb-kdbench" >&2
        exit 1
    fi
    for key in bench principals seed clock bulk elapsed_us per_sec store \
            pages depth records splits dir_doubles lookup_ns cold warm \
            samples p50 p95 p99 max; do
        if ! grep -q "\"$key\"" "$f"; then
            echo "$f is missing \"$key\" — regenerate with krb-kdbench" >&2
            exit 1
        fi
    done
done

echo "== OK"
