#!/bin/sh
# Tier-1 verification: build, test, and the krb-lint static-invariant pass.
# Run from anywhere; operates on the workspace this script lives in.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== krb-lint"
cargo run -q -p krb-lint

echo "== OK"
