//! The [`Strategy`] trait and basic combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng.random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Values generatable by [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `proptest::arbitrary::any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_tuples {
    ($( ($($s:ident),+) )*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }

        #[allow(non_snake_case)]
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($(<$s as Arbitrary>::arbitrary(rng),)+)
            }
        }
    )*};
}
impl_tuples! {
    (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E)
    (A, B, C, D, E, F) (A, B, C, D, E, F, G) (A, B, C, D, E, F, G, H)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.rng.random::<f64>() * (self.end - self.start)
    }
}

/// String strategies from a regex subset: `"[a-z0-9_-]{1,12}"` and the
/// like. See [`crate::string`] for the supported grammar.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
