//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its test suites use: the [`Strategy`]
//! trait with `prop_map`, `any::<T>()`, `Just`, tuple and range strategies,
//! regex-subset string strategies, `collection::vec`, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert*!` and `prop_assume!`
//! macros. Each test function runs `ProptestConfig::cases` deterministic
//! cases seeded from the test's module path, so failures reproduce across
//! runs. Unlike real proptest there is no shrinking: a failing case panics
//! with the generated values' debug representation where available.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds accepted by [`vec`]: `a..b`, `a..=b`, or an exact `usize`.
    pub trait IntoLenRange {
        /// Lower and inclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(element, 0..n)`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.min == self.max {
                self.min
            } else {
                rng.rng.random_range(self.min..=self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, prop_oneof, proptest};
}

/// Run one test body over `cases` generated inputs. Used by `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($field:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ( $( $strat, )* );
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..config.cases {
                    let ( $( $field, )* ) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Define a function returning a composed strategy. Only the arg-less outer
/// form `fn name()(x in s, ...) -> T { body }` is supported.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident () ( $($field:pat in $strat:expr),+ $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            let strat = ( $( $strat, )+ );
            $crate::strategy::Strategy::prop_map(strat, move |( $( $field, )+ )| $body)
        }
    };
}

/// Choose uniformly between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)+) => { assert!($($arg)+) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)+) => { assert_eq!($($arg)+) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)+) => { assert_ne!($($arg)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
