//! Deterministic case generation: config and RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each `proptest!` test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// RNG handed to strategies. Seeded from the test's name so every run of a
/// given test explores the same inputs (failures always reproduce).
pub struct TestRng {
    /// The underlying generator (strategies sample through this).
    pub rng: StdRng,
}

impl TestRng {
    /// Seed deterministically from an identifying string.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { rng: StdRng::seed_from_u64(h) }
    }
}
