//! Generate strings matching a small regex subset.
//!
//! Supported grammar, which covers every pattern in this workspace's tests:
//!
//! - literal characters, and `\x` escapes of metacharacters (`\.`, `\\`)
//! - character classes `[...]` with ranges (`a-z`) and literals; a `-` at
//!   the start or end of the class is literal
//! - groups `(...)`
//! - quantifiers `{n}` and `{m,n}` on the preceding atom
//!
//! Anything else (alternation, `*`, `+`, `?`, anchors) is rejected with a
//! panic so an unsupported pattern fails loudly rather than silently
//! generating the wrong language.

use crate::test_runner::TestRng;
use rand::Rng;

enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (pieces, consumed) = parse_seq(&chars, 0, pattern);
    assert!(
        consumed == chars.len(),
        "unsupported regex {pattern:?}: trailing input at {consumed}"
    );
    let mut out = String::new();
    emit_seq(&pieces, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], mut i: usize, pattern: &str) -> (Vec<Piece>, usize) {
    let mut pieces = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        let atom;
        match chars[i] {
            '[' => {
                let (class, next) = parse_class(chars, i + 1, pattern);
                atom = Atom::Class(class);
                i = next;
            }
            '(' => {
                let (inner, next) = parse_seq(chars, i + 1, pattern);
                assert!(
                    next < chars.len() && chars[next] == ')',
                    "unsupported regex {pattern:?}: unclosed group"
                );
                atom = Atom::Group(inner);
                i = next + 1;
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "unsupported regex {pattern:?}: trailing backslash");
                atom = Atom::Lit(chars[i + 1]);
                i += 2;
            }
            c => {
                assert!(
                    !matches!(c, '*' | '+' | '?' | '|' | '^' | '$' | '{' | '}' | ']'),
                    "unsupported regex {pattern:?}: metacharacter {c:?}"
                );
                atom = Atom::Lit(c);
                i += 1;
            }
        }
        let (min, max, next) = parse_quantifier(chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    (pieces, i)
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "unsupported regex {pattern:?}: inverted range {lo}-{hi}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unsupported regex {pattern:?}: unclosed class");
    assert!(!ranges.is_empty(), "unsupported regex {pattern:?}: empty class");
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u32, u32, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unsupported regex {pattern:?}: unclosed quantifier"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((a, b)) => (parse_count(a, pattern), parse_count(b, pattern)),
        None => {
            let n = parse_count(&body, pattern);
            (n, n)
        }
    };
    assert!(min <= max, "unsupported regex {pattern:?}: {{{min},{max}}}");
    (min, max, close + 1)
}

fn parse_count(s: &str, pattern: &str) -> u32 {
    s.trim()
        .parse()
        .unwrap_or_else(|_| panic!("unsupported regex {pattern:?}: bad count {s:?}"))
}

fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let reps = if piece.min == piece.max {
            piece.min
        } else {
            rng.rng.random_range(piece.min..=piece.max)
        };
        for _ in 0..reps {
            match &piece.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.rng.random_range(0..ranges.len())];
                    let span = (hi as u32) - (lo as u32) + 1;
                    let c = char::from_u32(lo as u32 + rng.rng.random_range(0..span))
                        .expect("class ranges stay in valid scalar values");
                    out.push(c);
                }
                Atom::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::test_runner::TestRng;

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = TestRng::deterministic("string::classes");
        for _ in 0..200 {
            let s = generate_matching("[a-z0-9_-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '_'
                || c == '-'));
        }
    }

    #[test]
    fn groups_and_escapes() {
        let mut rng = TestRng::deterministic("string::groups");
        for _ in 0..200 {
            let s = generate_matching("[A-Z]{1,8}(\\.[A-Z]{1,8}){0,2}", &mut rng);
            for part in s.split('.') {
                assert!((1..=8).contains(&part.len()), "{s:?}");
                assert!(part.chars().all(|c| c.is_ascii_uppercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::deterministic("string::printable");
        for _ in 0..200 {
            let s = generate_matching("[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_patterns_fail_loudly() {
        let mut rng = TestRng::deterministic("string::unsupported");
        generate_matching("a+", &mut rng);
    }
}
