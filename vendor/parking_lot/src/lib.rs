//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind the `parking_lot` interface the
//! workspace uses: infallible `lock()`/`read()`/`write()` that never return
//! poison errors. A panic while holding a std lock poisons it; matching
//! parking_lot semantics (which has no poisoning), the wrappers recover the
//! inner guard rather than propagating the poison.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with `parking_lot`'s infallible `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot has no poisoning; the wrapper must still hand out the guard.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
