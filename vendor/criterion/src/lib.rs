//! Offline stand-in for `criterion` (API subset).
//!
//! Provides the builder, group, and bencher surface the `krb-bench` targets
//! use, backed by a simple median-of-samples wall-clock measurement. No
//! statistics engine, plots, or baselines — numbers print to stdout in a
//! `name ... time: [median]` format. Good enough to rank hot paths and to
//! keep the bench targets compiling and runnable offline; for publishable
//! numbers swap the real crate back in.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness: sample counts and per-benchmark timing budgets.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Time budget for taking samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI parity; this stub takes no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, mut f: F) -> &mut Self {
        run_one(self, &id.to_string(), None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    /// Print the closing line (the real crate renders summaries here).
    pub fn final_summary(&mut self) {
        println!("(criterion stub: wall-clock medians above; no statistical analysis)");
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
/// Groups can override the harness's sample count and timing budgets,
/// as in the real crate.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput alongside timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of samples for benchmarks in this group (overrides the
    /// harness default).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Sampling budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// The harness configuration with this group's overrides applied.
    fn config(&self) -> Criterion {
        let mut c = self.parent.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        if let Some(d) = self.warm_up_time {
            c.warm_up_time = d;
        }
        if let Some(d) = self.measurement_time {
            c.measurement_time = d;
        }
        c
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.to_string());
        run_one(&self.config(), &full, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&self.config(), &full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `BenchmarkId::new("func", param)`.
    pub fn new(function: impl ToString, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.to_string(), parameter))
    }

    /// An identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// Handed to each benchmark closure; `iter` does the measuring.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &Criterion, name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: find an iteration count that fills ~1/sample_size of the
    // measurement budget, running at least until warm_up_time has passed.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / (iters as u32).max(1);
        if warm_start.elapsed() >= c.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    }
    let budget_per_sample = c.measurement_time / (c.sample_size as u32).max(1);
    let target_iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iters = target_iters.clamp(1, 1 << 30);

    let mut samples: Vec<Duration> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed / (iters as u32).max(1));
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            println!("{name:<60} time: [{median:>12.2?}]  thrpt: {rate:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{name:<60} time: [{median:>12.2?}]  thrpt: {rate:>12.0} elem/s");
        }
        None => println!("{name:<60} time: [{median:>12.2?}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        c.final_summary();
    }
}
