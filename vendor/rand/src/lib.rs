//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`random`, `random_range`,
//! `random_bool`), and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — statistically strong enough for simulations
//! and tests, and deterministic for a given seed, which is all this
//! workspace asks of it.
//!
//! # ⚠️ NOT a cryptographic RNG
//!
//! Every output is predictable from the seed (and recoverable from a few
//! observed outputs). Session and service keys drawn through this crate —
//! including by `krb_crypto::KeyGenerator` — are **simulation-only**, even
//! in `--release` builds; there is no "production mode" that upgrades
//! them. A real deployment must replace this vendored stand-in with the
//! real `rand`/OS entropy source. The [`CRYPTOGRAPHICALLY_SECURE`] marker
//! exists so downstream code can assert this fact loudly instead of
//! discovering it in an incident report.

#![forbid(unsafe_code)]

/// Machine-checkable marker that this stand-in is **not** a CSPRNG.
///
/// Always `false` here. The real `rand` has no such constant, so any code
/// that compiles against this marker is, by construction, running on the
/// simulation-only generator — tests assert on it to keep predictable key
/// generation from silently reaching a real deployment.
pub const CRYPTOGRAPHICALLY_SECURE: bool = false;

/// Core random-number-generation interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn from_seed_u64(state: u64) -> Self;

    /// `rand` names this `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self {
        Self::from_seed_u64(state)
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Bounds a `random_range` call accepts: `a..b` and `a..=b` over integers.
pub trait SampleRange<T> {
    /// Draw one value in the range. Panics on an empty range, like `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types [`SampleRange`] can produce (an `i128` round-trip is the
/// widening that makes one blanket impl cover signed and unsigned alike).
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `i128`.
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        T::from_i128(self.start.to_i128() + (u128::from(rng.next_u64()) % span) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        T::from_i128(lo.to_i128() + (u128::from(rng.next_u64()) % span) as i128)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion (the same construction the xoshiro authors specify).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn from_seed_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_all_positions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
