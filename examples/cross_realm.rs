//! Cross-realm authentication (§7.2): a Project Athena user reaches a
//! service at MIT's Laboratory for Computer Science — the exact pairing
//! the paper describes.
//!
//! Run with: `cargo run --example cross_realm`

use athena_kerberos::kdc::{pair_realms, Deployment, RealmConfig};
use athena_kerberos::krb::{krb_rd_req, Principal, ReplayCache};
use athena_kerberos::netsim::{ports, Endpoint, NetConfig, Router, SimNet};
use athena_kerberos::tools::{kdb_init, register_service, register_user, Workstation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ATHENA: &str = "ATHENA.MIT.EDU";
const LCS: &str = "LCS.MIT.EDU";

fn main() {
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut router = Router::new(SimNet::new(NetConfig::default()));

    // Two administrative domains, each with its own master database...
    let mut athena_boot = kdb_init(ATHENA, "athena-master", start, 70).unwrap();
    register_user(&mut athena_boot.db, "steiner", "", "steiner-pw", start).unwrap();
    let mut lcs_boot = kdb_init(LCS, "lcs-master", start, 71).unwrap();
    let mut keygen = athena_kerberos::crypto::KeyGenerator::new(StdRng::seed_from_u64(72));
    let supdup_key = register_service(&mut lcs_boot.db, "supdup", "zeus", start, &mut keygen).unwrap();

    // ...whose administrators "select a key to be shared between their
    // realms" (§7.2).
    let mut athena_cfg = RealmConfig::new(ATHENA);
    let mut lcs_cfg = RealmConfig::new(LCS);
    let shared = keygen.generate();
    pair_realms(&mut athena_cfg, &mut lcs_cfg, shared).unwrap();

    let athena_dep = Deployment::install(
        &mut router, ATHENA, athena_boot.db, athena_cfg, [18, 72, 0, 10], 0, start,
    ).unwrap();
    let lcs_dep = Deployment::install(
        &mut router, LCS, lcs_boot.db, lcs_cfg, [18, 26, 0, 10], 0, start,
    ).unwrap();

    // The Athena user logs in locally...
    let mut ws = Workstation::new(
        [18, 72, 0, 5], ATHENA, athena_dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&athena_dep.clock_cell)),
    );
    ws.add_remote_kdc(LCS, Endpoint::new([18, 26, 0, 10], ports::KDC));
    ws.kinit(&mut router, "steiner", "steiner-pw").unwrap();
    println!("logged in at {ATHENA} as {}", ws.whoami().unwrap());

    // ...and asks for a service in the other realm. The workstation
    // transparently fetches a cross-realm TGT from the local TGS, then the
    // service ticket from the remote TGS.
    let supdup = Principal::parse(&format!("supdup.zeus@{LCS}"), ATHENA).unwrap();
    let (ap, cred) = ws.mk_request(&mut router, &supdup, 0, false).unwrap();
    println!("obtained ticket for {} issued by realm {}", cred.service, cred.issuing_realm);
    for line in ws.klist() {
        println!("  klist: {line}");
    }

    // The LCS service verifies — and sees the ORIGINAL realm, so it can
    // "choose whether to honor those credentials".
    let mut rc = ReplayCache::new();
    let v = krb_rd_req(&ap, &supdup, &supdup_key, ws.addr, ws.now(), &mut rc).unwrap();
    println!(
        "supdup.zeus verified {} — originally authenticated by realm {}",
        v.client, v.client.realm
    );
    assert_eq!(v.client.realm, ATHENA);
    let _ = lcs_dep;
    println!("cross-realm authentication complete");
}
