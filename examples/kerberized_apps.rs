//! The §7.1 application tour: rlogin with `.rhosts` fallback, the
//! Kerberized Post Office Protocol, Zephyr notices with authenticated
//! senders, and signing up a new user with `register` (SMS + Kerberos),
//! plus a kpasswd password change through the KDBM (§5).
//!
//! Run with: `cargo run --example kerberized_apps`

use athena_kerberos::apps::{Mail, PopServer, RloginServer, Sms, ZephyrServer};
use athena_kerberos::kadm::{
    build_admin_request, build_kdbm_ticket_request, kpasswd_op, read_admin_reply,
    read_kdbm_ticket_reply, Acl, KdbmServer,
};
use athena_kerberos::kdc::{Deployment, RealmConfig};
use athena_kerberos::krb::Principal;
use athena_kerberos::netsim::{NetConfig, Router, SimNet};
use athena_kerberos::tools::{kdb_init, register_service, register_user, Workstation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REALM: &str = "ATHENA.MIT.EDU";
const WS_ADDR: [u8; 4] = [18, 72, 0, 5];

fn main() {
    let start = athena_kerberos::netsim::EPOCH_1987;
    let mut boot = kdb_init(REALM, "master", start, 50).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    register_user(&mut boot.db, "jis", "", "jis-pw", start).unwrap();
    let mut keygen = athena_kerberos::crypto::KeyGenerator::new(StdRng::seed_from_u64(51));
    let rcmd_key = register_service(&mut boot.db, "rcmd", "priam", start, &mut keygen).unwrap();
    let pop_key = register_service(&mut boot.db, "pop", "paris", start, &mut keygen).unwrap();
    let zephyr_key = register_service(&mut boot.db, "zephyr", "zion", start, &mut keygen).unwrap();

    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    ).unwrap();
    // The KDBM runs on the master only (§5, Fig. 11).
    KdbmServer::register_service(&dep.master, &keygen.generate(), start).unwrap();
    let mut kdbm = KdbmServer::new(
        std::sync::Arc::clone(&dep.master),
        Acl::new(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    )
    .unwrap();

    let mut ws = Workstation::new(
        WS_ADDR, REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    ws.kinit(&mut router, "bcn", "bcn-pw").unwrap();
    println!("== logged in as {} ==", ws.whoami().unwrap());

    // --- rlogin: Kerberos first, .rhosts fallback (§7.1).
    let mut rlogin = RloginServer::new(Principal::parse("rcmd.priam", REALM).unwrap(), rcmd_key);
    let rcmd = Principal::parse("rcmd.priam", REALM).unwrap();
    let (ap, _) = ws.mk_request(&mut router, &rcmd, 0, false).unwrap();
    let session = rlogin.connect(Some(&ap), "bcn", WS_ADDR, ws.now()).unwrap();
    println!("rlogin: authorized {} via {:?} (no .rhosts needed)", session.user, session.method);
    rlogin.add_rhosts("jis", [18, 72, 0, 7]);
    let fallback = rlogin.connect(None, "jis", [18, 72, 0, 7], ws.now()).unwrap();
    println!("rlogin: authorized {} via {:?} (old world)", fallback.user, fallback.method);

    // --- POP: only your own mailbox (§7.1).
    let mut pop = PopServer::new(Principal::parse("pop.paris", REALM).unwrap(), pop_key);
    pop.deliver("bcn", Mail { from: "jis".into(), body: "4.3BSD tapes arrived".into() });
    let pop_svc = Principal::parse("pop.paris", REALM).unwrap();
    let (ap, _) = ws.mk_request(&mut router, &pop_svc, 0, false).unwrap();
    let mail = pop.retrieve(&ap, WS_ADDR, ws.now()).unwrap();
    println!("pop: retrieved {} message(s): {:?}", mail.len(), mail[0].body);

    // --- Zephyr: authenticated notices (§7.1).
    let mut zephyr = ZephyrServer::new(Principal::parse("zephyr.zion", REALM).unwrap(), zephyr_key);
    zephyr.subscribe("jis");
    let z = Principal::parse("zephyr.zion", REALM).unwrap();
    let (ap, _) = ws.mk_request(&mut router, &z, 0, false).unwrap();
    zephyr.send(&ap, WS_ADDR, ws.now(), "jis", "MESSAGE", "lunch at walker?").unwrap();
    let notices = zephyr.receive("jis");
    println!("zephyr: jis received from {}: {:?}", notices[0].from, notices[0].body);

    // --- register: SMS validity + Kerberos uniqueness (§7.1).
    let mut sms = Sms::new();
    sms.enroll("Window Treese", "912345678");
    athena_kerberos::apps::register(&sms, &dep.master, "Window Treese", "912345678", "treese", "treese-pw", ws.now())
        .unwrap();
    println!("register: created principal 'treese' after SMS + uniqueness checks");

    // --- kpasswd: change a password through the KDBM (§5.2, Fig. 12).
    // A fresh KDBM ticket must come from the AS — the password is typed again.
    let client = Principal::parse("bcn", REALM).unwrap();
    let now = ws.now();
    let req = build_kdbm_ticket_request(&client, now);
    let reply = router.rpc(ws.endpoint, dep.kdc_endpoints()[0], &req).unwrap();
    let cred = read_kdbm_ticket_reply(&reply, "bcn-pw", now).unwrap();
    let admin_req = build_admin_request(&cred, &client, WS_ADDR, now, &kpasswd_op("bcn-new-pw"));
    read_admin_reply(&kdbm.handle(&admin_req, WS_ADDR)).unwrap();
    println!("kpasswd: password changed (audit log has {} entry)", kdbm.audit_log().len());

    // The new password works; the old one is dead.
    let mut ws2 = Workstation::new(
        [18, 72, 0, 6], REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    assert!(ws2.kinit(&mut router, "bcn", "bcn-pw").is_err());
    ws2.kinit(&mut router, "bcn", "bcn-new-pw").unwrap();
    println!("login with new password: ok");
}
