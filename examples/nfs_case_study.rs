//! The appendix case study: Kerberizing Sun NFS.
//!
//! Walks the full flow — login, Kerberos-moderated mount, credential
//! mapping, file traffic — then measures the design argument: full
//! Kerberos authentication per NFS operation vs. the kernel credential
//! map ("would have delivered unacceptable performance").
//!
//! Run with: `cargo run --release --example nfs_case_study`

use athena_kerberos::apps::{login, logout};
use athena_kerberos::hesiod::{FilsysInfo, Hesiod, UserInfo};
use athena_kerberos::kdc::{Deployment, RealmConfig};
use athena_kerberos::krb::Principal;
use athena_kerberos::netsim::{NetConfig, Router, SimNet};
use athena_kerberos::nfs::{
    FullAuthNfsServer, MountD, NfsCredential, NfsOp, NfsServer, ServerPolicy, UserTable, Vfs,
};
use athena_kerberos::tools::{kdb_init, register_service, register_user, Workstation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const REALM: &str = "ATHENA.MIT.EDU";
const WS_ADDR: [u8; 4] = [18, 72, 0, 5];

fn main() {
    let start = athena_kerberos::netsim::EPOCH_1987;

    // Realm with a user and the fileserver's NFS service.
    let mut boot = kdb_init(REALM, "master", start, 30).unwrap();
    register_user(&mut boot.db, "bcn", "", "bcn-pw", start).unwrap();
    let mut keygen = athena_kerberos::crypto::KeyGenerator::new(StdRng::seed_from_u64(31));
    let nfs_key = register_service(&mut boot.db, "nfs", "fs30", start, &mut keygen).unwrap();

    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 0, start,
    ).unwrap();

    // Hesiod knows where bcn's home directory lives.
    let hesiod = Hesiod::new();
    hesiod.add_user(UserInfo {
        username: "bcn".into(), uid: 8042, gids: vec![8042, 100],
        real_name: "Clifford Neuman".into(), phone: "x3-1234".into(), shell: "/bin/csh".into(),
    });
    hesiod.add_filsys("bcn", FilsysInfo { server_addr: [18, 72, 0, 30], path: "/bcn".into() });

    // The fileserver.
    let mut vfs = Vfs::new();
    vfs.provision_home("bcn", 8042, 8042).unwrap();
    let mut nfs = NfsServer::new(vfs, ServerPolicy::Friendly);
    let mut users = UserTable::new();
    users.add("bcn", 8042, vec![8042, 100]);
    let mut mountd = MountD::new(Principal::parse("nfs.fs30", REALM).unwrap(), nfs_key, users);

    // --- Login per the appendix.
    let mut ws = Workstation::new(
        WS_ADDR, REALM, dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    let session = login(&mut ws, &mut router, &hesiod, &mut mountd, &mut nfs, "bcn", "bcn-pw", 500)
        .expect("login");
    println!("login ok: {}", session.passwd_entry);
    println!("kernel credential map: {} entry(ies)", nfs.credmap.len());

    // --- File traffic under the mapping.
    let cred = NfsCredential { uid: 500, gids: vec![500] };
    let f = match nfs.handle(WS_ADDR, &cred, &NfsOp::Create(session.home_ino, "paper.tex".into(), 0o600)) {
        Ok(athena_kerberos::nfs::NfsReply::Handle(h)) => h,
        other => panic!("create failed: {other:?}"),
    };
    nfs.handle(WS_ADDR, &cred, &NfsOp::Write(f, 0, b"\\title{Kerberos}".to_vec())).unwrap();
    println!("wrote paper.tex in bcn's home over mapped NFS");

    // --- The performance argument (E13).
    const OPS: u32 = 5_000;
    let t0 = Instant::now();
    for i in 0..OPS {
        nfs.handle(WS_ADDR, &cred, &NfsOp::Read(f, (i % 8) as usize, 16)).unwrap();
    }
    let mapped = t0.elapsed();

    // Baseline: the rejected design — full Kerberos auth per operation.
    let mut vfs2 = Vfs::new();
    vfs2.provision_home("bcn", 8042, 8042).unwrap();
    let svc = Principal::parse("nfs.fs30", REALM).unwrap();
    let svc_key = athena_kerberos::crypto::string_to_key("fullauth-svc");
    let mut full = FullAuthNfsServer::new(vfs2, svc.clone(), svc_key);
    full.add_user("bcn", NfsCredential { uid: 8042, gids: vec![8042, 100] });
    let home = 1;
    let session_key = athena_kerberos::crypto::string_to_key("sess");
    let client = Principal::parse("bcn", REALM).unwrap();
    let ticket = athena_kerberos::krb::Ticket::new(
        &svc, &client, WS_ADDR, start, 96, *session_key.as_bytes(),
    )
    .seal(&svc_key);

    let t0 = Instant::now();
    for i in 0..OPS {
        // A fresh authenticator per op — that is what "full blown Kerberos
        // authenticated data" on every transaction means.
        let ap = athena_kerberos::krb::krb_mk_req(
            &ticket, REALM, &session_key, &client, WS_ADDR, start + i, 0, false,
        );
        full.handle(WS_ADDR, &ap, start + i, &NfsOp::Readdir(home)).unwrap();
    }
    let fullauth = t0.elapsed();

    println!("\n== E13: per-operation authentication cost ({OPS} ops) ==");
    println!("kernel credential map : {mapped:?} ({:.2} µs/op)", mapped.as_secs_f64() * 1e6 / f64::from(OPS));
    println!("full Kerberos per op  : {fullauth:?} ({:.2} µs/op)", fullauth.as_secs_f64() * 1e6 / f64::from(OPS));
    println!(
        "slowdown factor       : {:.0}x  (the paper's 'unacceptable performance')",
        fullauth.as_secs_f64() / mapped.as_secs_f64()
    );

    // --- Logout closes the forgery window.
    logout(&mut ws, &mut mountd, &mut nfs, &session);
    let denied = nfs.handle(WS_ADDR, &cred, &NfsOp::Readdir(session.home_ino));
    println!("\nafter logout, forged <addr,uid> request -> {denied:?}");
}
