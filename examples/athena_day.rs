//! An Athena day at paper scale (§9: 5,000 users, 650 workstations, 65
//! servers), plus the §8 ticket-lifetime tradeoff table.
//!
//! Run with: `cargo run --release --example athena_day`
//! (use `--release`; five thousand real DES-encrypted login exchanges are
//! slow in debug builds). Pass `--small` for a quick scaled-down run.

use athena_kerberos::sim::{
    athena_scale, run, run_full_day, tradeoff, FullDayConfig, LifetimeConfig, ScenarioConfig,
};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let config = if small {
        ScenarioConfig { users: 100, workstations: 20, services: 10, slaves: 2, ..Default::default() }
    } else {
        athena_scale()
    };

    println!(
        "== Athena day: {} users, {} workstations, {} services, {} slave KDC(s) ==",
        config.users, config.workstations, config.services, config.slaves
    );
    let report = run(config);
    println!("logins (password prompts at the door): {}", report.logins);
    println!("mid-session re-authentications (TGT expiry, §6.1): {}", report.reauthentications);
    println!("authenticated service uses (TGS + krb_rd_req): {}", report.service_uses);
    println!("hourly propagations: {} ({} dump bytes shipped)", report.propagations, report.propagated_bytes);
    print!("KDC load (master first): ");
    let total: u64 = report.kdc_load.iter().sum();
    for (i, load) in report.kdc_load.iter().enumerate() {
        print!("kdc{i}={load} ({:.0}%)  ", 100.0 * *load as f64 / total.max(1) as f64);
    }
    println!();
    if report.failures.is_empty() {
        println!("failures: none");
    } else {
        println!("failures: {:?}", report.failures);
    }

    // The application-level day: logins mount NFS homes through the
    // Kerberized mount daemon, write files, fetch mail, send Zephyrs.
    println!("\n== Full application day (login + NFS + POP + Zephyr) ==");
    let full = run_full_day(FullDayConfig {
        users: if small { 20 } else { 200 },
        workstations: if small { 6 } else { 60 },
        ..Default::default()
    });
    println!(
        "logins {}, files written {}, NFS ops {}, mail retrieved {}, notices {}",
        full.logins, full.files_written, full.nfs_ops, full.mail_retrieved, full.notices_sent
    );
    println!(
        "credential mappings left after the last logout: {} (the appendix's cleanup guarantee)",
        full.mappings_leaked
    );
    if !full.failures.is_empty() {
        println!("failures: {:?}", full.failures);
    }

    // §8: the lifetime tradeoff ("a matter of choosing the proper tradeoff
    // between security and convenience").
    println!("\n== Ticket lifetime tradeoff (§8) ==");
    println!(
        "{:>10} {:>10} {:>18} {:>20} {:>18}",
        "life", "hours", "prompts/user/day", "mean exposure (h)", "P(usable @ +1h)"
    );
    for row in tradeoff(LifetimeConfig::default(), &[3, 6, 12, 24, 48, 96, 144, 255]) {
        println!(
            "{:>10} {:>10.2} {:>18.2} {:>20.2} {:>18.2}",
            row.life_units,
            f64::from(row.life_units) * 5.0 / 60.0,
            row.prompts_per_user,
            row.mean_exposure_secs / 3600.0,
            row.p_usable_after_1h,
        );
    }
    println!("\nThe paper's choice — 8 hours (96 units) — sits where prompts/day ~1");
    println!("while a stolen ticket dies by the next working day.");
}
