//! Quickstart: stand up a realm, log a user in, and authenticate to a
//! service — the three phases of Figure 9 in fifty lines.
//!
//! Run with: `cargo run --example quickstart`

use athena_kerberos::kdc::{Deployment, RealmConfig};
use athena_kerberos::krb::{krb_mk_rep, krb_rd_rep, krb_rd_req, Principal, ReplayCache};
use athena_kerberos::netsim::{NetConfig, Router, SimNet};
use athena_kerberos::tools::{kdb_init, register_service, register_user, Workstation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REALM: &str = "ATHENA.MIT.EDU";

fn main() {
    let start = athena_kerberos::netsim::EPOCH_1987;

    // --- The administrator's job (§6.3): initialize the database and
    // register principals.
    let mut boot = kdb_init(REALM, "master-password", start, 7).expect("kdb_init");
    register_user(&mut boot.db, "bcn", "", "bcn-password", start).expect("register user");
    let mut keygen =
        athena_kerberos::crypto::KeyGenerator::new(StdRng::seed_from_u64(8));
    let rlogin_key =
        register_service(&mut boot.db, "rlogin", "priam", start, &mut keygen).expect("register service");

    // --- Deploy the authentication service: a master and one slave.
    let mut router = Router::new(SimNet::new(NetConfig::default()));
    let dep = Deployment::install(
        &mut router, REALM, boot.db, RealmConfig::new(REALM), [18, 72, 0, 10], 1, start,
    ).unwrap();
    println!("realm {REALM}: master at {}, {} slave(s)", dep.kdc_endpoints()[0], dep.slaves.len());

    // --- Phase 1 (Fig. 5): the user logs in. Only the password proves
    // identity; it never crosses the network.
    let mut ws = Workstation::new(
        [18, 72, 0, 5],
        REALM,
        dep.kdc_endpoints(),
        athena_kerberos::kdc::shared_clock(std::sync::Arc::clone(&dep.clock_cell)),
    );
    ws.kinit(&mut router, "bcn", "bcn-password").expect("kinit");
    println!("logged in as {}", ws.whoami().expect("owner"));

    // --- Phase 2 (Fig. 8): get a ticket for rlogin.priam from the TGS —
    // no password needed, the TGT session key carries the exchange.
    let service = Principal::parse("rlogin.priam", REALM).expect("name");
    let (ap_req, cred) = ws.mk_request(&mut router, &service, 0, true).expect("mk_request");
    println!("got service ticket: {} (life {} x 5min)", cred.service, cred.life);
    for line in ws.klist() {
        println!("  klist: {line}");
    }

    // --- Phase 3 (Fig. 6/7): present ticket + authenticator; the server
    // verifies and proves itself back (mutual authentication).
    let mut replays = ReplayCache::new();
    let verified = krb_rd_req(&ap_req, &service, &rlogin_key, ws.addr, ws.now(), &mut replays)
        .expect("krb_rd_req");
    println!("server verified client: {}", verified.client);
    let reply = krb_mk_rep(&verified);
    krb_rd_rep(&reply, &cred.key(), verified.timestamp).expect("mutual auth");
    println!("client verified server: mutual authentication complete");

    // A replay of the same request is detected.
    let replayed = krb_rd_req(&ap_req, &service, &rlogin_key, ws.addr, ws.now(), &mut replays);
    println!("replayed request -> {:?}", replayed.expect_err("rejected"));
}
